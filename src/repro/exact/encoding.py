"""SAT encoding of the exact MIG synthesis problem (Sec. III of the paper).

The paper formulates exact synthesis as an SMT decision problem: *does an
MIG with exactly k majority nodes computing f exist?*  Every constraint of
that formulation is finite-domain, so we bit-blast it to CNF and solve it
with the in-tree CDCL solver (the paper used Z3; see DESIGN.md §4).

Variable map, mirroring the paper's Sec. III (gate index ``l`` from 1 to
``k``, truth-table row ``j`` from 0 to ``2**n - 1``, operand ``c`` from 1
to 3):

* ``b[l][j]``   — output value of gate ``l`` on row ``j``        (Eq. 4)
* ``a[c][l][j]``— value of operand ``c`` of gate ``l`` on row ``j``
* ``s[c][l][i]``— one-hot selector: operand ``c`` of gate ``l`` connects
  to node ``i`` where ``i = 0`` is the constant, ``1..n`` are primary
  inputs and ``n+1..n+l-1`` are previous gates                  (Eqs. 5-8)
* ``p[c][l]``   — edge polarity (true = non-complemented)

Constraints: majority semantics (Eq. 4), connection implications
(Eqs. 6-8), the output row values (Eq. 9, with the output polarity fixed
positive by self-duality, as the paper notes), and the operand-ordering
symmetry break ``s1 < s2 < s3`` (Eq. 10).  We additionally require every
non-root gate to be referenced by a later gate, which is sound when
iterating ``k`` upward from 0 (a minimum MIG has no dead gates), and
break the gate-permutation symmetry: when gate ``l + 1`` does not read
gate ``l`` the two gates could be swapped, so we force their first
operand selections to be non-decreasing.
Any topological renumbering of a solution can be bubble-sorted into one
satisfying every such adjacent-pair constraint, so satisfiability is
preserved (validated exhaustively on all 3-variable functions).

Row constraints are added *lazily* to support counterexample-guided
refinement (CEGAR): :meth:`ExactMigEncoding.solve_cegar` starts from a
couple of rows, extracts a candidate MIG, simulates it against the full
specification and adds any violated row, which keeps individual SAT calls
far smaller than the monolithic encoding.  This is an implementation
strengthening over the paper (which handed the whole formula to Z3);
soundness is unaffected because constraints are only ever added.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from ..core.mig import Mig, make_signal, signal_not
from ..core.truth_table import tt_mask, tt_support
from ..sat.cnf import CnfBuilder

__all__ = ["ExactMigEncoding", "encode_exact_mig"]


@dataclass
class ExactMigEncoding:
    """Handle to an (incrementally constructed) exact-synthesis instance."""

    num_vars: int
    num_gates: int
    spec: int
    builder: CnfBuilder
    # select_vars[l][c][i] — one-hot selector literals.
    select_vars: list[list[list[int]]] = field(repr=False)
    # polarity_vars[l][c]
    polarity_vars: list[list[int]] = field(repr=False)
    # output_vars[l][j] / operand_vars[l][c][j], populated per added row.
    output_vars: dict[int, list[int]] = field(repr=False, default_factory=dict)
    operand_vars: dict[int, list[list[int]]] = field(repr=False, default_factory=dict)

    # -- incremental row constraints ------------------------------------

    def add_row(self, j: int) -> None:
        """Constrain the encoding on truth-table row *j* (Eqs. 4, 6-9)."""
        if j in self.output_vars:
            return
        builder = self.builder
        n = self.num_vars
        k = self.num_gates
        b_row = [builder.new_var() for _ in range(k)]
        a_row = [[builder.new_var() for _ in range(3)] for _ in range(k)]
        self.output_vars[j] = b_row
        self.operand_vars[j] = a_row
        for l in range(k):
            builder.maj_gate(b_row[l], a_row[l][0], a_row[l][1], a_row[l][2])
            for c in range(3):
                a = a_row[l][c]
                p = self.polarity_vars[l][c]
                s0 = self.select_vars[l][c][0]
                # Constant connection (Eq. 6): value = not p.
                builder.add_clause([-s0, -a, -p])
                builder.add_clause([-s0, a, p])
                # Primary-input connection (Eq. 7): value = x_{i-1}(j) xor not p.
                for i in range(1, n + 1):
                    s = self.select_vars[l][c][i]
                    if (j >> (i - 1)) & 1:
                        builder.add_clause([-s, -a, p])
                        builder.add_clause([-s, a, -p])
                    else:
                        builder.add_clause([-s, -a, -p])
                        builder.add_clause([-s, a, p])
                # Gate connection (Eq. 8): value = b_i(j) xor not p.
                for i in range(1, l + 1):
                    s = self.select_vars[l][c][n + i]
                    b = b_row[i - 1]
                    builder.add_clause([-s, -p, -b, a])
                    builder.add_clause([-s, -p, b, -a])
                    builder.add_clause([-s, p, -b, -a])
                    builder.add_clause([-s, p, b, a])
        # Function semantics (Eq. 9), output polarity fixed positive.
        value = (self.spec >> j) & 1
        builder.add_unit(b_row[k - 1] if value else -b_row[k - 1])

    def add_all_rows(self) -> None:
        """Add every truth-table row (the paper's monolithic formulation)."""
        for j in range(1 << self.num_vars):
            self.add_row(j)

    # -- solving ---------------------------------------------------------

    def solve(
        self, conflict_budget: int | None = None, deadline: float | None = None
    ) -> bool | None:
        """Solve the monolithic instance (all rows)."""
        self.add_all_rows()
        return self.builder.solve(conflict_budget=conflict_budget, deadline=deadline)

    @property
    def rows(self) -> list[int]:
        """The truth-table rows currently constrained, in sorted order."""
        return sorted(self.output_vars)

    def solve_cegar(
        self,
        conflict_budget: int | None = None,
        deadline: float | None = None,
        seed_rows: Iterable[int] | None = None,
    ) -> bool | None:
        """Solve via counterexample-guided row refinement.

        Returns True (a valid MIG can be extracted), False (no MIG with
        this many gates exists), or None on budget exhaustion.

        *seed_rows* constrains additional rows before the first solve.
        The synthesis driver passes the row set that refuted size
        ``k - 1`` here: those counterexamples remain valid for size ``k``
        (row constraints are only ever added), so the refinement loop
        does not have to re-discover them one SAT call at a time.
        """
        # Seed with the two extreme rows — cheap and usually informative.
        rows = 1 << self.num_vars
        self.add_row(0)
        self.add_row(rows - 1)
        if seed_rows is not None:
            for j in seed_rows:
                self.add_row(j)
        budget = conflict_budget
        while True:
            before = self.builder.solver.conflicts
            answer = self.builder.solve(conflict_budget=budget, deadline=deadline)
            if budget is not None:
                budget -= self.builder.solver.conflicts - before
            if answer is None:
                return None
            if answer is False:
                return False
            candidate = self.extract_mig()
            got = candidate.simulate()[0]
            diff = got ^ self.spec
            if diff == 0:
                return True
            # Add the lowest-index violated row and refine.
            self.add_row((diff & -diff).bit_length() - 1)
            if budget is not None and budget <= 0:
                return None

    def extract_mig(self) -> Mig:
        """Decode a satisfying model into an MIG (Theorem 1 of the paper)."""
        builder = self.builder
        n = self.num_vars
        mig = Mig(n)
        node_signals: list[int] = [0] + [make_signal(1 + v) for v in range(n)]
        for l in range(self.num_gates):
            operands = []
            for c in range(3):
                selected = None
                for i, s_var in enumerate(self.select_vars[l][c]):
                    if builder.value(s_var):
                        selected = i
                        break
                if selected is None:
                    raise RuntimeError(f"gate {l + 1} operand {c + 1} has no selection")
                signal = node_signals[selected]
                if not builder.value(self.polarity_vars[l][c]):
                    signal = signal_not(signal)
                operands.append(signal)
            node_signals.append(mig.maj(*operands))
        mig.add_po(node_signals[-1], "f")
        return mig


def encode_exact_mig(
    spec: int,
    num_vars: int,
    num_gates: int,
    portfolio=None,
    budget=None,
) -> ExactMigEncoding:
    """Encode: does an MIG with *num_gates* majority gates compute *spec*?

    *spec* is a truth table over *num_vars* variables.  ``num_gates`` must
    be at least 1 (the ``k = 0`` cases — constants and literals — are
    checked explicitly by the synthesis driver, as in the paper).  Row
    constraints are added lazily; use :meth:`ExactMigEncoding.solve` for
    the monolithic instance or :meth:`ExactMigEncoding.solve_cegar`.

    *portfolio* (a :class:`~repro.sat.portfolio.PortfolioSolver`) races
    every solve call across external backends; *budget* (a shared
    :class:`~repro.runtime.budget.Budget`) caps each call's wall clock.
    """
    if num_gates < 1:
        raise ValueError("encode_exact_mig requires at least one gate")
    if spec < 0 or spec > tt_mask(num_vars):
        raise ValueError(f"spec 0x{spec:x} out of range for {num_vars} variables")

    n = num_vars
    k = num_gates
    builder = CnfBuilder(portfolio=portfolio, budget=budget)

    select_vars = [
        [[builder.new_var() for _ in range(n + 1 + l)] for _ in range(3)]
        for l in range(k)
    ]
    polarity_vars = [[builder.new_var() for _ in range(3)] for _ in range(k)]

    for l in range(k):
        num_options = n + 1 + l
        for c in range(3):
            builder.exactly_one(select_vars[l][c])
        # Symmetry breaking (Eq. 10): s1 < s2 < s3.
        for c in range(2):
            for i1 in range(num_options):
                for i2 in range(i1 + 1):
                    builder.add_clause(
                        [-select_vars[l][c][i1], -select_vars[l][c + 1][i2]]
                    )

    # Every non-root gate must feed some later gate.
    for l in range(k - 1):
        fanout_lits = []
        for l2 in range(l + 1, k):
            for c in range(3):
                fanout_lits.append(select_vars[l2][c][n + 1 + l])
        builder.add_clause(fanout_lits)

    # Gate-permutation symmetry break: if gate l+1 does not read gate l
    # (so the two are interchangeable, for l+1 below the root), force
    # their first operand selections to be non-decreasing.  (Extending
    # the break to the second operand on ties is sound too, but measured
    # slower: the extra clauses cost more than the pruning saves.)
    for l in range(k - 2):
        reads = [select_vars[l + 1][c][n + 1 + l] for c in range(3)]
        num_options = n + 1 + l  # gate l's option count
        for i1 in range(num_options):
            for i2 in range(i1):
                builder.add_clause(
                    [-select_vars[l][0][i1], -select_vars[l + 1][0][i2], *reads]
                )

    # Every variable in the functional support must be selected somewhere
    # (a network that never reads x_i cannot depend on it) — a sound cut
    # that substantially strengthens UNSAT proofs.
    for i in tt_support(spec, n):
        builder.add_clause(
            [select_vars[l][c][1 + i] for l in range(k) for c in range(3)]
        )

    return ExactMigEncoding(
        num_vars=n,
        num_gates=k,
        spec=spec,
        builder=builder,
        select_vars=select_vars,
        polarity_vars=polarity_vars,
    )

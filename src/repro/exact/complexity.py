"""Complexity measures of small functions: L(f) and D(f) of Table II.

The paper characterizes all 4-variable functions by three measures:

* ``C(f)`` — combinational complexity: gates in a minimum MIG (DAG).
  Computed by exact synthesis / the NPN database.
* ``L(f)`` — length: majority operators in the smallest *expression*
  (i.e. tree, no sharing).  Computed here by an exhaustive bit-parallel
  dynamic program over all ``2**2**n`` functions.
* ``D(f)`` — depth: the smallest possible longest root-to-terminal path.
  Computed here per NPN class with a depth-bounded tree SAT encoding.

Both measures are NPN-invariant (inverters are free on edges and outputs;
permutations relabel inputs), which the test-suite checks.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from ..core.npn import enumerate_npn_classes, npn_class_sizes, npn_representative
from ..core.truth_table import tt_mask, tt_var
from ..sat.cnf import CnfBuilder

__all__ = [
    "compute_length_table",
    "length_distribution",
    "tree_depth_feasible",
    "compute_depth_by_class",
    "depth_distribution",
]


def _terminal_functions(num_vars: int) -> list[int]:
    """Constants and (complemented) projections — the cost-0 expressions."""
    mask = tt_mask(num_vars)
    terminals = [0, mask]
    for i in range(num_vars):
        var = tt_var(num_vars, i)
        terminals.append(var)
        terminals.append(var ^ mask)
    return terminals


def compute_length_table_with_sets(
    num_vars: int = 4, max_length: int = 12
) -> tuple[np.ndarray, dict[int, np.ndarray]]:
    """Like :func:`compute_length_table` but also return the per-cost sets."""
    return _length_dp(num_vars, max_length)


def cached_length_table(num_vars: int = 4) -> np.ndarray:
    """L(f) table with a persistent on-disk cache.

    The exhaustive 4-variable DP takes a couple of minutes; the result is
    cached under the package data directory and reused by Table II and by
    database generation.  The load path is fault-tolerant: an unreadable,
    pickled, or mis-shaped cache file is quarantined (renamed to
    ``*.corrupt``) and the table regenerated and re-saved atomically, so
    a corrupt artifact can never crash the pipeline.
    """
    from ..runtime.artifacts import atomic_save_npy, load_validated_npy

    cache = Path(__file__).resolve().parent.parent / "database" / "data"
    path = cache / f"length{num_vars}.npy"
    table = load_validated_npy(
        path,
        expected_shape=(1 << (1 << num_vars),),
        expected_dtype=np.uint8,
    )
    if table is not None:
        return table
    table = compute_length_table(num_vars)
    try:
        cache.mkdir(parents=True, exist_ok=True)
        atomic_save_npy(path, table)
    except OSError:
        pass  # read-only installs just recompute
    return table


def cached_length_sets(num_vars: int = 4) -> tuple[np.ndarray, dict[int, np.ndarray]]:
    """Cached L table plus the per-cost function sets derived from it."""
    table = cached_length_table(num_vars)
    by_cost: dict[int, np.ndarray] = {}
    for cost in range(int(table.max()) + 1):
        members = np.nonzero(table == cost)[0].astype(np.uint16)
        if members.size:
            by_cost[cost] = members
    return table, by_cost


def compute_length_table(num_vars: int = 4, max_length: int = 12) -> np.ndarray:
    """Compute ``L(f)`` for every function over *num_vars* variables.

    Returns an array of length ``2**2**n`` with the minimum expression
    length per truth table.  Exhaustive DP: functions of length ``c`` are
    majorities of three subfunctions whose lengths sum to ``c - 1``
    (optimal expressions decompose into optimal subexpressions).  The
    inner loops run bit-parallel in numpy; complement closure halves the
    outer enumeration since ``<a'b'c'> = <abc>'``.
    """
    return _length_dp(num_vars, max_length)[0]


def _length_dp(
    num_vars: int, max_length: int
) -> tuple[np.ndarray, dict[int, np.ndarray]]:
    if num_vars > 4:
        raise ValueError("length DP is exhaustive; supported up to 4 variables")
    size = 1 << (1 << num_vars)
    mask = tt_mask(num_vars)
    length = np.full(size, 255, dtype=np.uint8)
    terminals = np.array(sorted(set(_terminal_functions(num_vars))), dtype=np.uint16)
    length[terminals] = 0
    by_cost: dict[int, np.ndarray] = {0: terminals}

    remaining = size - len(terminals)
    for cost in range(1, max_length + 1):
        if remaining == 0:
            break
        partitions = []
        for c1 in range((cost - 1) // 3 + 1):
            for c2 in range(c1, cost - 1 - c1 + 1):
                c3 = cost - 1 - c1 - c2
                if c3 < c2:
                    continue
                if c1 in by_cost and c2 in by_cost and c3 in by_cost:
                    work = len(by_cost[c1]) * len(by_cost[c2]) * len(by_cost[c3])
                    partitions.append((work, c1, c2, c3))
        partitions.sort()
        new_found: list[np.ndarray] = []
        for _, c1, c2, c3 in partitions:
            # Loop over the smallest set in Python; broadcast the other two.
            costs = sorted((c1, c2, c3), key=lambda c: len(by_cost[c]))
            loop_set = by_cost[costs[0]]
            set_b, set_c = by_cost[costs[1]], by_cost[costs[2]]
            symmetric = costs[1] == costs[2]
            found = _dp_step(loop_set, set_b, set_c, symmetric, length, cost, mask)
            if found.size:
                new_found.append(found)
                remaining -= found.size
        if new_found:
            by_cost[cost] = np.unique(np.concatenate(new_found))
        else:
            by_cost[cost] = np.empty(0, dtype=np.uint16)
    return length, by_cost


def _dp_step(
    set_a: np.ndarray,
    set_b: np.ndarray,
    set_c: np.ndarray,
    symmetric: bool,
    length: np.ndarray,
    cost: int,
    mask: int,
) -> np.ndarray:
    """Mark functions ``<abc>`` (a∈A, b∈B, c∈C) of length *cost*; return them.

    Only the half of ``A`` with even least-significant truth-table bit is
    enumerated; complements of results are marked too (see module doc).
    When ``symmetric`` (B and C are the same cost set) only the upper
    triangle of the B×C product is scanned, at chunk granularity.
    """
    half_a = set_a[(set_a & 1) == 0]
    found_chunks: list[np.ndarray] = []
    # Keep the broadcast below ~8M entries per chunk.
    chunk = max(1, (1 << 23) // max(1, len(set_c)))
    for a in half_a:
        a = int(a)
        ab = (a & set_b).astype(np.uint16, copy=False)
        ob = (a | set_b).astype(np.uint16, copy=False)
        for start in range(0, len(set_b), chunk):
            stop = start + chunk
            cols = set_c[start:] if symmetric else set_c
            res = ab[start:stop, None] | (cols[None, :] & ob[start:stop, None])
            flat = res.ravel()
            fresh_mask = length[flat] == 255
            if not fresh_mask.any():
                continue
            fresh = np.unique(flat[fresh_mask])
            length[fresh] = cost
            comp = fresh ^ mask
            comp_fresh = comp[length[comp] == 255]
            length[comp_fresh] = cost
            found_chunks.append(fresh)
            if comp_fresh.size:
                found_chunks.append(comp_fresh)
    if not found_chunks:
        return np.empty(0, dtype=np.uint16)
    return np.unique(np.concatenate(found_chunks))


def length_distribution(num_vars: int = 4) -> dict[int, tuple[int, int]]:
    """Return ``{L: (num_classes, num_functions)}`` — the L columns of Table II."""
    table = cached_length_table(num_vars)
    reps = enumerate_npn_classes(num_vars)
    class_sizes = npn_class_sizes(num_vars)
    dist: dict[int, tuple[int, int]] = {}
    for rep in reps:
        level = int(table[rep])
        classes, functions = dist.get(level, (0, 0))
        dist[level] = (classes + 1, functions + class_sizes[rep])
    return dict(sorted(dist.items()))


# ----------------------------------------------------------------------
# depth via tree SAT
# ----------------------------------------------------------------------


def tree_depth_feasible(
    spec: int, num_vars: int, depth: int, conflict_budget: int | None = None
) -> bool | None:
    """Decide whether ``D(spec) <= depth`` via a complete-ternary-tree SAT encoding.

    Every position of a complete ternary tree of the given depth is either
    a terminal (constant or literal) or — below the leaf level — a
    majority over its three children.  Depth needs no sharing, so the tree
    shape is complete without loss of generality.
    """
    mask = tt_mask(num_vars)
    if spec == 0 or spec == mask:
        return True
    terminals = _terminal_functions(num_vars)
    if depth == 0:
        return spec in terminals
    rows = 1 << num_vars

    builder = CnfBuilder()
    # Positions level by level; position p at level < depth has children.
    levels: list[list[dict]] = []
    positions: list[dict] = []
    prev_level: list[dict] = []
    for level in range(depth + 1):
        count = 3**level
        this_level = []
        for _ in range(count):
            pos = {
                "value": [builder.new_var() for _ in range(rows)],
                "is_terminal": builder.new_var(),
                "choice": [builder.new_var() for _ in range(len(terminals))],
                "children": [],
            }
            this_level.append(pos)
            positions.append(pos)
        levels.append(this_level)
    for level in range(depth):
        for idx, pos in enumerate(levels[level]):
            pos["children"] = [levels[level + 1][3 * idx + c] for c in range(3)]

    for level, this_level in enumerate(levels):
        for pos in this_level:
            is_term = pos["is_terminal"]
            if level == depth:
                builder.add_unit(is_term)
            # Terminal: exactly one choice, value fixed per row.
            builder.implies_clause(is_term, pos["choice"])
            builder.at_most_one(pos["choice"])
            for t_idx, t_func in enumerate(terminals):
                choice = pos["choice"][t_idx]
                for j in range(rows):
                    bit = (t_func >> j) & 1
                    v = pos["value"][j]
                    builder.add_clause([-is_term, -choice, v if bit else -v])
            if level < depth:
                # Internal: value = maj(children) on every row.
                kids = pos["children"]
                for j in range(rows):
                    a, b, c = (kid["value"][j] for kid in kids)
                    out = pos["value"][j]
                    builder.add_clause([is_term, -a, -b, out])
                    builder.add_clause([is_term, -a, -c, out])
                    builder.add_clause([is_term, -b, -c, out])
                    builder.add_clause([is_term, a, b, -out])
                    builder.add_clause([is_term, a, c, -out])
                    builder.add_clause([is_term, b, c, -out])

    root = levels[0][0]
    builder.add_unit(-root["is_terminal"])  # depth >= 1 here; terminals handled above
    for j in range(rows):
        bit = (spec >> j) & 1
        v = root["value"][j]
        builder.add_unit(v if bit else -v)
    return builder.solve(conflict_budget=conflict_budget)


def _depth_closure_sets(num_vars: int) -> list[np.ndarray]:
    """Sets ``R_d`` of functions with tree depth <= d, for d = 0, 1, 2.

    ``R_{d+1} = R_d ∪ maj(R_d, R_d, R_d)``; feasible exhaustively through
    ``R_2`` (|R_2| ≈ 10 350 for n = 4).  ``R_3`` would need ~10^12 triples,
    so membership in it is decided per function by :func:`_in_next_closure`.
    """
    terminals = np.array(
        sorted(set(_terminal_functions(num_vars))), dtype=np.int64
    )
    sets = [terminals]
    size = 1 << (1 << num_vars)
    for _ in range(2):
        current = sets[-1]
        member = np.zeros(size, dtype=bool)
        member[current] = True
        for a in current:
            a = int(a)
            ab = a & current
            ob = a | current
            for c_start in range(0, len(current), 4096):
                cols = current[c_start : c_start + 4096]
                res = ab[:, None] | (cols[None, :] & ob[:, None])
                member[res.ravel()] = True
        sets.append(np.nonzero(member)[0])
    return sets


def _in_next_closure(f: int, closure: np.ndarray, mask: int) -> bool:
    """Is ``f = <g1 g2 h>`` for g1, g2, h in *closure*?

    ``<g1 g2 h> = (g1 & g2) | (h & (g1 | g2))``, so a completing ``h``
    exists for a pair (g1, g2) iff ``g1&g2 ⊆ f ⊆ g1|g2`` and some member
    matches ``f`` on the disagreement bits ``g1 ^ g2``.
    """
    f_not = f ^ mask
    for g1 in closure:
        g1 = int(g1)
        ab = g1 & closure
        ob = g1 | closure
        ok = ((ab & f_not) == 0) & ((f & (ob ^ mask)) == 0)
        for idx in np.nonzero(ok)[0]:
            g2 = int(closure[idx])
            d = g1 ^ g2
            if ((closure & d) == (f & d)).any():
                return True
    return False


def compute_depth_by_class(
    num_vars: int = 4, conflict_budget: int | None = None
) -> dict[int, int]:
    """Compute ``D(f)`` for every NPN class representative.

    Depths 0-2 come from exhaustive closure sets; depth 3 from the
    vectorized triple-membership test.  Anything deeper is depth 4: every
    n-variable function has ``D <= 4`` for ``n = 4`` via the multiplexer
    construction over 3-variable cofactors (which all have ``D <= 2``).
    """
    del conflict_budget  # kept for API compatibility; unused by this path
    sets = _depth_closure_sets(num_vars)
    mask = tt_mask(num_vars)
    size = 1 << (1 << num_vars)
    in_r = []
    for s in sets:
        member = np.zeros(size, dtype=bool)
        member[s] = True
        in_r.append(member)
    result: dict[int, int] = {}
    for rep in enumerate_npn_classes(num_vars):
        if in_r[0][rep]:
            result[rep] = 0
        elif in_r[1][rep]:
            result[rep] = 1
        elif in_r[2][rep]:
            result[rep] = 2
        elif _in_next_closure(rep, sets[2], mask):
            result[rep] = 3
        else:
            result[rep] = 4
    return result


def depth_distribution(num_vars: int = 4) -> dict[int, tuple[int, int]]:
    """Return ``{D: (num_classes, num_functions)}`` — the D columns of Table II."""
    by_class = compute_depth_by_class(num_vars)
    class_sizes = npn_class_sizes(num_vars)
    dist: dict[int, tuple[int, int]] = {}
    for rep, depth in by_class.items():
        classes, functions = dist.get(depth, (0, 0))
        dist[depth] = (classes + 1, functions + class_sizes[rep])
    return dict(sorted(dist.items()))

"""Optimal-length expression (tree) synthesis from the L(f) dynamic program.

The exhaustive DP of :mod:`repro.exact.complexity` yields, for every
4-variable function, the minimum number of majority operators in an
expression tree.  This module *extracts witnesses*: an actual expression
achieving ``L(f)``, rebuilt as an MIG (structural hashing may merge equal
subtrees, so the resulting MIG size is ``<= L(f)``).

These trees serve as the initial upper bounds of the NPN database
(DESIGN.md §6): ``L(f)`` is at most ``C(f) + 2`` for every 4-variable
function (compare the C and L columns of Table II), so even before any
SAT improvement the database is near-optimal.

Witness search: ``f = <a b h>`` decomposes as ``f = (a&b) | (h & (a|b))``,
so for a candidate pair ``(a, b)`` a completing ``h`` exists iff
``a&b ⊆ f ⊆ a|b`` and some ``h`` in the target cost set matches ``f`` on
the disagreement bits ``a^b`` (elsewhere ``h`` is don't-care).
"""

from __future__ import annotations

import numpy as np

from ..core.mig import Mig, make_signal, signal_not
from ..core.truth_table import tt_mask, tt_var
from .complexity import cached_length_sets

__all__ = ["TreeSynthesizer"]


class TreeSynthesizer:
    """Builds L-optimal expression MIGs for functions over *num_vars* inputs."""

    def __init__(self, num_vars: int = 4) -> None:
        self.num_vars = num_vars
        self.mask = tt_mask(num_vars)
        self.length, by_cost = cached_length_sets(num_vars)
        # Keep sets as int64 numpy arrays for the vectorized witness search.
        self.by_cost = {c: np.asarray(s, dtype=np.int64) for c, s in by_cost.items()}

    def length_of(self, f: int) -> int:
        """Return ``L(f)``."""
        return int(self.length[f])

    def synthesize(self, f: int) -> Mig:
        """Return a single-output MIG realizing *f* with ``<= L(f)`` gates."""
        mig = Mig(self.num_vars)
        memo: dict[int, int] = {0: 0, self.mask: 1}
        for i in range(self.num_vars):
            var = tt_var(self.num_vars, i)
            memo[var] = make_signal(1 + i)
            memo[var ^ self.mask] = signal_not(make_signal(1 + i))

        def build(g: int) -> int:
            cached = memo.get(g)
            if cached is not None:
                return cached
            comp = memo.get(g ^ self.mask)
            if comp is not None:
                signal = signal_not(comp)
                memo[g] = signal
                return signal
            a, b, h = self._decompose(g)
            signal = mig.maj(build(a), build(b), build(h))
            memo[g] = signal
            return signal

        mig.add_po(build(f), "f")
        return mig.cleanup()

    def _decompose(self, f: int) -> tuple[int, int, int]:
        """Find ``(a, b, h)`` with ``<abh> = f`` and optimal component lengths."""
        cost = int(self.length[f])
        if cost == 0:
            raise ValueError(f"0x{f:x} is a terminal; nothing to decompose")
        f_not = f ^ self.mask
        for c1 in range((cost - 1) // 3 + 1):
            for c2 in range(c1, cost - 1 - c1 + 1):
                c3 = cost - 1 - c1 - c2
                if c3 < c2:
                    continue
                sets = sorted(
                    (self.by_cost[c1], self.by_cost[c2], self.by_cost[c3]), key=len
                )
                loop_set, pair_set, exist_set = sets[0], sets[2], sets[1]
                for a in loop_set:
                    a = int(a)
                    ab = a & pair_set
                    ob = a | pair_set
                    ok = ((ab & f_not) == 0) & ((f & (ob ^ self.mask)) == 0)
                    for bi in np.nonzero(ok)[0]:
                        b = int(pair_set[bi])
                        d = a ^ b
                        need = f & d
                        matches = exist_set[(exist_set & d) == need]
                        if matches.size:
                            return a, b, int(matches[0])
        raise RuntimeError(f"no decomposition found for 0x{f:x} at cost {cost}")

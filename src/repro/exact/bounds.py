"""The MIG size upper bound of Theorem 2.

The paper proves ``C(n) <= 10 * (2**(n-4) - 1) + 7`` for ``n >= 4`` by
induction: the base case is the exhaustively computed worst 4-variable
cost (7 majority gates), and the step is Shannon's expansion written in
majority form::

    f = <1 <0 x' f_x'> <0 x f_x>>        (3 extra gates per variable)

:func:`shannon_upper_bound_mig` implements exactly this construction, so
the bound can be validated experimentally for ``n > 4``
(``benchmarks/bench_theorem2.py``).
"""

from __future__ import annotations

from ..core.mig import CONST0, CONST1, Mig, make_signal, signal_not
from ..core.truth_table import tt_cofactor0, tt_cofactor1, tt_mask
from ..database.npn_db import NpnDatabase

__all__ = ["theorem2_bound", "shannon_upper_bound_mig"]


def theorem2_bound(num_vars: int, base_cost: int = 7) -> int:
    """The Theorem 2 bound ``10 * (2**(n-4) - 1) + 7`` for ``n >= 4``.

    *base_cost* is the worst-case 4-variable MIG size; pass the maximum
    size found in a (possibly unproven) database to get the corresponding
    relaxed bound ``(base_cost + 3) * (2**(n-4) - 1) + base_cost``.
    """
    if num_vars < 4:
        raise ValueError("Theorem 2 is stated for n >= 4")
    return (base_cost + 3) * (2 ** (num_vars - 4) - 1) + base_cost


def shannon_upper_bound_mig(spec: int, num_vars: int, db: NpnDatabase) -> Mig:
    """Build an MIG for *spec* via the Theorem 2 Shannon construction.

    Variables above the 4th are expanded one at a time with the 3-gate
    majority form of Shannon's expansion; 4-variable leaves come from the
    NPN database.  The resulting size respects
    :func:`theorem2_bound` with ``base_cost`` the database maximum.
    """
    if num_vars < 4:
        raise ValueError("use the database directly for n <= 4")
    if spec < 0 or spec > tt_mask(num_vars):
        raise ValueError(f"spec 0x{spec:x} out of range for {num_vars} variables")
    mig = Mig(num_vars)

    def build(tt: int, top_var: int) -> int:
        """Implement *tt* over variables 0..top_var (inclusive)."""
        if top_var < 4:
            leaves = [make_signal(1 + i) for i in range(4)]
            return db.rebuild(mig, tt & tt_mask(4), leaves)
        f0 = tt_cofactor0(tt, top_var, top_var + 1) & tt_mask(top_var)
        f1 = tt_cofactor1(tt, top_var, top_var + 1) & tt_mask(top_var)
        x = make_signal(1 + top_var)
        if f0 == f1:
            return build(f0, top_var - 1)
        low = build(f0, top_var - 1)
        high = build(f1, top_var - 1)
        # <1 <0 x' f0> <0 x f1>>
        left = mig.maj(CONST0, signal_not(x), low)
        right = mig.maj(CONST0, x, high)
        return mig.maj(CONST1, left, right)

    mig.add_po(build(spec, num_vars - 1), "f")
    return mig.cleanup()

"""MIG size bounds: the Theorem 2 upper bound and synthesis lower bounds.

The paper proves ``C(n) <= 10 * (2**(n-4) - 1) + 7`` for ``n >= 4`` by
induction: the base case is the exhaustively computed worst 4-variable
cost (7 majority gates), and the step is Shannon's expansion written in
majority form::

    f = <1 <0 x' f_x'> <0 x f_x>>        (3 extra gates per variable)

:func:`shannon_upper_bound_mig` implements exactly this construction, so
the bound can be validated experimentally for ``n > 4``
(``benchmarks/bench_theorem2.py``).

:func:`mig_size_lower_bound` is the other direction, used by the exact
synthesis driver to *start* the size loop above sizes that provably
cannot work instead of refuting them with SAT calls:

* support counting — a connected single-output MIG with ``k`` majority
  gates has ``3k`` operand slots of which at least ``k - 1`` feed later
  gates, so it reads at most ``2k + 1`` distinct primary inputs;
* exhaustive membership in the (cached) sets of functions computable
  with one, two or (for ``n <= 4``) three gates, which pushes the bound
  to 3 or 4 for everything else.

:func:`optimal_small_migs` makes those membership sets constructive: it
is an exhaustive enumeration of all MIG structures with up to three
gates (up to two for ``n > 4``, where the three-gate sweep gets
expensive), keyed by truth table, each entry carrying a witness gate
list.  For any function in the table the minimum size is *known* and a
witness MIG can be rebuilt without any SAT call at all; for any function
outside it the synthesis size loop can start at the first unknown size.
The table is a function of ``n`` only, computed once per process and
shared by every synthesis call — the same amortization the paper applies
to its NPN database.
"""

from __future__ import annotations

from functools import lru_cache

from ..core.mig import CONST0, CONST1, Mig, make_signal, signal_not
from ..core.truth_table import (
    tt_cofactor0,
    tt_cofactor1,
    tt_maj,
    tt_mask,
    tt_support,
    tt_var,
)
from ..database.npn_db import NpnDatabase
from .heuristic import single_gate_functions

__all__ = [
    "theorem2_bound",
    "shannon_upper_bound_mig",
    "mig_size_lower_bound",
    "optimal_mig_from_table",
    "optimal_small_migs",
    "two_gate_functions",
]


def theorem2_bound(num_vars: int, base_cost: int = 7) -> int:
    """The Theorem 2 bound ``10 * (2**(n-4) - 1) + 7`` for ``n >= 4``.

    *base_cost* is the worst-case 4-variable MIG size; pass the maximum
    size found in a (possibly unproven) database to get the corresponding
    relaxed bound ``(base_cost + 3) * (2**(n-4) - 1) + base_cost``.
    """
    if num_vars < 4:
        raise ValueError("Theorem 2 is stated for n >= 4")
    return (base_cost + 3) * (2 ** (num_vars - 4) - 1) + base_cost


def shannon_upper_bound_mig(spec: int, num_vars: int, db: NpnDatabase) -> Mig:
    """Build an MIG for *spec* via the Theorem 2 Shannon construction.

    Variables above the 4th are expanded one at a time with the 3-gate
    majority form of Shannon's expansion; 4-variable leaves come from the
    NPN database.  The resulting size respects
    :func:`theorem2_bound` with ``base_cost`` the database maximum.
    """
    if num_vars < 4:
        raise ValueError("use the database directly for n <= 4")
    if spec < 0 or spec > tt_mask(num_vars):
        raise ValueError(f"spec 0x{spec:x} out of range for {num_vars} variables")
    mig = Mig(num_vars)

    def build(tt: int, top_var: int) -> int:
        """Implement *tt* over variables 0..top_var (inclusive)."""
        if top_var < 4:
            leaves = [make_signal(1 + i) for i in range(4)]
            return db.rebuild(mig, tt & tt_mask(4), leaves)
        f0 = tt_cofactor0(tt, top_var, top_var + 1) & tt_mask(top_var)
        f1 = tt_cofactor1(tt, top_var, top_var + 1) & tt_mask(top_var)
        x = make_signal(1 + top_var)
        if f0 == f1:
            return build(f0, top_var - 1)
        low = build(f0, top_var - 1)
        high = build(f1, top_var - 1)
        # <1 <0 x' f0> <0 x f1>>
        left = mig.maj(CONST0, signal_not(x), low)
        right = mig.maj(CONST0, x, high)
        return mig.maj(CONST1, left, right)

    mig.add_po(build(spec, num_vars - 1), "f")
    return mig.cleanup()


@lru_cache(maxsize=8)
def two_gate_functions(num_vars: int) -> frozenset[int]:
    """All truth tables computable by an MIG with at most two gates.

    Enumerated exhaustively: the root gate reads the inner gate (with
    either polarity) plus two literal/constant operands — a two-gate MIG
    whose root ignores the inner gate is really a one-gate MIG, and
    self-duality of majority closes the set under output complement.
    """
    mask = tt_mask(num_vars)
    literals = [0, mask]
    for i in range(num_vars):
        v = tt_var(num_vars, i)
        literals.append(v)
        literals.append(v ^ mask)
    inner = set(single_gate_functions(num_vars))
    table = set(literals) | inner
    for f1 in inner:
        for g in (f1, f1 ^ mask):
            for ia in range(len(literals)):
                for ib in range(ia + 1, len(literals)):
                    table.add(tt_maj(g, literals[ia], literals[ib]))
    return frozenset(table)


# A witness is a tuple of gates; each gate is a triple of operand
# signals ``2 * node + complemented`` where node 0 is the constant,
# 1..n are primary inputs and n+1, n+2, ... are earlier witness gates.
Witness = tuple[tuple[int, int, int], ...]

#: Three-gate enumeration is O(|1-gate|^2) truth-table operations; past
#: this variable count we stop at the (cheap) two-gate sweep.
_THREE_GATE_MAX_VARS = 4


@lru_cache(maxsize=4)
def optimal_small_migs(num_vars: int) -> dict[int, Witness]:
    """Map truth table -> minimum witness gate list, for all small MIGs.

    Exhaustively enumerates every MIG structure with up to three gates
    (two for ``num_vars > 4``): every gate reads three *distinct* earlier
    nodes with arbitrary edge polarities, and every non-root gate feeds a
    later gate (dead gates never occur in a minimum MIG).  Functions of
    size 0 (constants and literals) are excluded — the synthesis driver
    handles them directly.  Witness length is the exact minimum size:
    each size layer only records functions absent from all smaller ones.
    """
    mask = tt_mask(num_vars)
    one_gate = single_gate_functions(num_vars)
    # Leaf operands: (signal, truth table) with distinct-node pairs only
    # (a node and its complement are the same node, as are 0 and 1).
    leaves = [(CONST0, 0), (CONST1, mask)]
    for i in range(num_vars):
        pos = make_signal(1 + i)
        v = tt_var(num_vars, i)
        leaves.append((pos, v))
        leaves.append((signal_not(pos), v ^ mask))
    leaf_pairs = [
        (leaves[ia], leaves[ib])
        for ia in range(len(leaves))
        for ib in range(ia + 1, len(leaves))
        if leaves[ia][0] >> 1 != leaves[ib][0] >> 1
    ]
    trivial = {0, mask}
    for _, v in leaves:
        trivial.add(v)

    table: dict[int, Witness] = {}
    # -- size 1 ----------------------------------------------------------
    for tt, ops in one_gate.items():
        if tt not in trivial:
            table.setdefault(tt, (ops,))
    one_tts = [tt for tt in one_gate if tt not in trivial]
    known = trivial | set(table)

    # -- size 2: root reads +/-g1 and two distinct leaf nodes ------------
    g1_ref = make_signal(num_vars + 1)
    two: dict[int, Witness] = {}
    for tt1 in one_tts:
        ops1 = one_gate[tt1]
        for g_sig, g_tt in ((g1_ref, tt1), (signal_not(g1_ref), tt1 ^ mask)):
            for (sa, va), (sb, vb) in leaf_pairs:
                tt = tt_maj(g_tt, va, vb)
                if tt not in known and tt not in two:
                    two[tt] = (ops1, (g_sig, sa, sb))
    table.update(two)
    known |= set(two)
    if num_vars > _THREE_GATE_MAX_VARS:
        return table

    # -- size 3 ----------------------------------------------------------
    g2_ref = make_signal(num_vars + 2)
    # (a) root reads the top of a two-gate chain plus two leaves.  The
    # exact-size-2 set is closed under complement (majority self-duality),
    # so iterating it positively covers both root polarities.
    for tt2, (w1, w2) in two.items():
        for (sa, va), (sb, vb) in leaf_pairs:
            tt = tt_maj(tt2, va, vb)
            if tt not in known:
                table[tt] = (w1, w2, (g2_ref, sa, sb))
    # (b) root reads g1, g2 and a leaf, where g2 also reads g1.  Root
    # polarities on g1/g2 are explicit: g2's construction pins g1.
    for tt1 in one_tts:
        ops1 = one_gate[tt1]
        for (sa, va), (sb, vb) in leaf_pairs:
            for g_sig, g_tt in ((g1_ref, tt1), (signal_not(g1_ref), tt1 ^ mask)):
                tt2 = tt_maj(g_tt, va, vb)
                if tt2 in trivial or tt2 in one_gate:
                    continue  # the whole network would shrink below 3 gates
                ops2 = (g_sig, sa, sb)
                for r1_sig, r1_tt in ((g1_ref, tt1), (signal_not(g1_ref), tt1 ^ mask)):
                    for r2_sig, r2_tt in ((g2_ref, tt2), (signal_not(g2_ref), tt2 ^ mask)):
                        for sc, vc in leaves:
                            tt = tt_maj(r1_tt, r2_tt, vc)
                            if tt not in known:
                                table[tt] = (ops1, ops2, (r1_sig, r2_sig, sc))
    # (c) root reads two independent single gates and a leaf.  The
    # one-gate truth-table set is closed under complement, so unordered
    # pairs over it cover all four root polarity combinations.
    for i1 in range(len(one_tts)):
        tt1 = one_tts[i1]
        ops1 = one_gate[tt1]
        for i2 in range(i1 + 1, len(one_tts)):
            tt2 = one_tts[i2]
            if tt2 == tt1 ^ mask:
                continue  # maj(f, ~f, c) = c: never a new function
            ops2 = one_gate[tt2]
            for sc, vc in leaves:
                tt = tt_maj(tt1, tt2, vc)
                if tt not in known:
                    table[tt] = (ops1, ops2, (g1_ref, g2_ref, sc))
    return table


def optimal_mig_from_table(spec: int, num_vars: int) -> Mig | None:
    """Rebuild a provably minimum MIG for *spec* from the witness table.

    Returns None when *spec* is not covered (its minimum size exceeds the
    enumerated range).  Size-0 functions (constants and literals) are
    also materialized here for completeness.
    """
    if spec < 0 or spec > tt_mask(num_vars):
        raise ValueError(f"spec 0x{spec:x} out of range for {num_vars} variables")
    mask = tt_mask(num_vars)
    trivial: dict[int, int] = {0: CONST0, mask: CONST1}
    for i in range(num_vars):
        v = tt_var(num_vars, i)
        trivial.setdefault(v, make_signal(1 + i))
        trivial.setdefault(v ^ mask, signal_not(make_signal(1 + i)))
    if spec in trivial:
        mig = Mig(num_vars)
        mig.add_po(trivial[spec], "f")
        return mig
    witness = optimal_small_migs(num_vars).get(spec)
    if witness is None:
        return None
    mig = Mig(num_vars)
    node_signals = [CONST0] + [make_signal(1 + i) for i in range(num_vars)]
    for ops in witness:
        resolved = [node_signals[s >> 1] ^ (s & 1) for s in ops]
        node_signals.append(mig.maj(*resolved))
    mig.add_po(node_signals[-1], "f")
    return mig


def mig_size_lower_bound(spec: int, num_vars: int) -> int:
    """A sound lower bound on the minimum majority-gate count for *spec*.

    Exact for every size the witness table covers (0-3 for ``n <= 4``,
    0-2 above); one past the table for everything else, more when the
    functional support forces it (``k`` gates read at most ``2k + 1``
    distinct inputs).
    """
    if spec < 0 or spec > tt_mask(num_vars):
        raise ValueError(f"spec 0x{spec:x} out of range for {num_vars} variables")
    mask = tt_mask(num_vars)
    if spec in (0, mask):
        return 0
    for i in range(num_vars):
        v = tt_var(num_vars, i)
        if spec in (v, v ^ mask):
            return 0
    support_bound = len(tt_support(spec, num_vars)) // 2  # ceil((s - 1) / 2)
    witness = optimal_small_migs(num_vars).get(spec)
    if witness is not None:
        return max(len(witness), support_bound)
    past_table = 4 if num_vars <= _THREE_GATE_MAX_VARS else 3
    return max(past_table, support_bound)

"""Command-line interface: generate / read, optimize, map, and report.

Modeled on the CirKit-style flows the paper's implementation shipped in::

    migopt stats --generate adder --width 16
    migopt optimize --generate multiplier --width 8 --variant BF --verify
    migopt optimize --blif circuit.blif --variant TFD -o out.blif
    migopt map --generate sine --width 10 --variant BF
    migopt exact --tt 0x1668
    migopt flow --generate log2 --width 10 --script depth,BF,TFD,BF
"""

from __future__ import annotations

import argparse
import sys
import time

from .core.mig import Mig
from .core.simulate import check_equivalence
from .database import NpnDatabase
from .exact.synthesis import synthesize_exact
from .generators import CONTROL_SPECS, GENERATORS, resolve_generator
from .generators.epfl import SUITE_SPECS
from .io.bench import read_bench, write_bench
from .io.blif import read_blif, write_blif
from .io.verilog import write_verilog
from .mapping.mapper import map_mig
from .opt.depth_opt import optimize_depth
from .rewriting.engine import VARIANTS, functional_hashing

__all__ = ["main"]


def _load_network(args: argparse.Namespace) -> Mig:
    if args.generate is not None:
        try:
            return resolve_generator(args.generate, width=args.width)
        except ValueError as exc:
            raise SystemExit(str(exc))
    if args.blif is not None:
        with open(args.blif, "r", encoding="utf-8") as fp:
            return read_blif(fp)
    if getattr(args, "bench", None) is not None:
        with open(args.bench, "r", encoding="utf-8") as fp:
            return read_bench(fp)
    raise SystemExit("specify a circuit with --generate NAME, --blif FILE, or --bench FILE")


def _write_network(mig: Mig, path: str) -> None:
    with open(path, "w", encoding="utf-8") as fp:
        if path.endswith(".v"):
            write_verilog(mig, fp)
        elif path.endswith(".bench"):
            write_bench(mig, fp)
        else:
            write_blif(mig, fp)


def _dump_metrics(path: str, payload: dict) -> None:
    import json

    text = json.dumps(payload, indent=2, sort_keys=True)
    if path == "-":
        print(text)
    else:
        with open(path, "w", encoding="utf-8") as fp:
            fp.write(text + "\n")
        print(f"metrics written to {path}")


def _add_input_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--generate", help=f"built-in generator: {sorted(GENERATORS)}")
    parser.add_argument("--width", type=int, help="generator bit-width override")
    parser.add_argument("--blif", help="read the circuit from a BLIF file")
    parser.add_argument("--bench", help="read the circuit from an ISCAS .bench file")


def _add_cut_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--cut-size", type=int, default=None, choices=[4, 5, 6],
        help="cut width for functional-hashing steps (default: 4, the "
        "precomputed NPN database); 5 or 6 synthesizes entries on demand "
        "into a DynamicDatabase",
    )
    parser.add_argument(
        "--npn-store", metavar="PATH", default=None,
        help="persistent NPN-5/6 store backing --cut-size 5/6: created on "
        "first use, crash-safe, shared across runs so later lookups skip "
        "synthesis (ignored at cut size 4)",
    )


def _resolve_db(args: argparse.Namespace):
    """NPN database (+ optional persistent store) for a CLI command.

    Returns ``(db, store)`` — the store is non-None only for the
    large-cut tiers, and the caller closes it when done.
    """
    cut_size = getattr(args, "cut_size", None)
    if cut_size is not None and cut_size != 4:
        from .rewriting.dynamic_db import DynamicDatabase

        db = DynamicDatabase(num_vars=cut_size, store=args.npn_store)
        return db, db.store
    if getattr(args, "npn_store", None):
        raise SystemExit("--npn-store needs --cut-size 5 or 6")
    return NpnDatabase.load(args.db), None


def _add_sat_backend_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--sat-backend", default="internal",
        choices=["auto", "internal", "portfolio"],
        help="SAT solver lanes: 'internal' is the deterministic in-process "
        "CDCL solver; 'portfolio' races it against external kissat/CaDiCaL "
        "binaries ($REPRO_SAT_SOLVERS overrides discovery) and degrades to "
        "internal-only when none exist; 'auto' races only when a binary is "
        "found (default: internal)",
    )


def _batch_specs(args: argparse.Namespace) -> list:
    """Build the job list for ``migopt batch`` (deterministic job ids)."""
    from pathlib import Path

    from .runtime.jobs import JobSpec

    script = tuple(step for step in args.script.split(",") if step)
    networks: list[tuple[str, dict]] = []
    if args.generate:
        if args.generate == "suite":
            names = sorted(SUITE_SPECS)
        elif args.generate == "control":
            names = sorted(CONTROL_SPECS)
        elif args.generate == "all":
            names = sorted(GENERATORS)
        else:
            names = [n for n in args.generate.split(",") if n]
        for name in names:
            if name not in GENERATORS:
                raise SystemExit(
                    f"unknown generator {name!r}; choose from {sorted(GENERATORS)}"
                )
            network = {"generate": name}
            if args.width is not None:
                network["width"] = args.width
            slug = name if args.width is None else f"{name}-w{args.width}"
            networks.append((slug, network))
    for path in args.blif:
        networks.append((Path(path).stem, {"blif": str(Path(path).resolve())}))
    for path in args.bench:
        networks.append((Path(path).stem, {"bench": str(Path(path).resolve())}))
    if getattr(args, "shard", False):
        if networks:
            raise SystemExit(
                "--shard takes its job list from the pre-submitted journal; "
                "drop --generate/--blif/--bench"
            )
        return []
    if not networks and not args.resume:
        raise SystemExit(
            "specify circuits with --generate NAMES, --blif FILE, or "
            "--bench FILE (or --resume an existing batch)"
        )

    npn_store = None
    if args.cut_size is not None and args.cut_size != 4:
        if args.npn_store is not None:
            # Workers run in their own processes; hand them one absolute
            # path so every job appends to the same store.
            npn_store = str(Path(args.npn_store).resolve())
    elif args.npn_store:
        raise SystemExit("--npn-store needs --cut-size 5 or 6")

    outputs_dir = Path(args.workdir) / "outputs"
    specs = []
    seen: dict[str, int] = {}
    for slug, network in networks:
        count = seen.get(slug, 0)
        seen[slug] = count + 1
        job_id = slug if count == 0 else f"{slug}.{count}"
        specs.append(
            JobSpec(
                job_id=job_id,
                network=network,
                script=script,
                verify=args.verify,
                sat_backend=args.sat_backend,
                time_limit=args.time_limit,
                conflict_limit=args.conflict_limit,
                cut_size=args.cut_size,
                npn_store=npn_store,
                mem_limit_mb=args.mem_limit,
                output=None if args.no_outputs else str(outputs_dir / f"{job_id}.blif"),
            )
        )
    return specs


def _run_batch_command(args: argparse.Namespace) -> int:
    import signal

    from .runtime import faults
    from .runtime.supervisor import Supervisor

    # The supervisor may itself have been launched with REPRO_FAULTS set
    # (the chaos smoke test does exactly that): arm them so spawn-time
    # probes and the worker handshake see them.
    faults.arm_from_env()

    specs = _batch_specs(args)
    supervisor = Supervisor(
        args.workdir,
        num_workers=args.jobs,
        grace=args.grace,
        max_attempts=args.max_attempts,
        backoff_base=args.backoff,
        verbose=True,
    )

    # Ctrl-C / SIGTERM drain instead of tearing down: the scheduling loop
    # stops launching, SIGTERMs live workers (SIGKILL after --grace), and
    # journals every unfinished job resumable — `--resume` continues it.
    def _drain_signal(signum, frame):  # noqa: ARG001 - signal API
        if supervisor.shutdown_requested:
            # Second signal: the user really wants out now.
            raise KeyboardInterrupt
        print(f"\nbatch: caught {signal.Signals(signum).name}, draining "
              "(signal again to abort hard)...", flush=True)
        supervisor.request_shutdown()

    previous = {}
    for sig in (signal.SIGINT, signal.SIGTERM):
        try:
            previous[sig] = signal.signal(sig, _drain_signal)
        except (ValueError, OSError):
            pass
    try:
        report = supervisor.run(
            specs, resume=args.resume or getattr(args, "shard", False)
        )
    except FileExistsError as exc:
        raise SystemExit(str(exc))
    finally:
        for sig, handler in previous.items():
            try:
                signal.signal(sig, handler)
            except (ValueError, OSError):
                pass
    print(
        f"batch: {report.done}/{report.total} done, "
        f"{report.quarantined} quarantined, {report.retries} retries, "
        f"{report.adopted} adopted, {report.workers_used} workers used, "
        f"{report.wall_seconds:.2f}s"
        + (" [interrupted]" if report.interrupted else "")
    )
    for summary in report.jobs:
        line = f"  {summary['job_id']:24} {summary['state']}"
        if "size_before" in summary:
            line += f"  {summary['size_before']} -> {summary.get('size_after')}"
        if summary.get("degradations"):
            line += f"  [degraded: {', '.join(summary['degradations'])}]"
        if summary["state"] == "quarantined":
            line += f"  ({summary.get('error', 'unknown error')})"
        print(line)
    if args.report:
        _dump_metrics(args.report, report.to_dict())
    print(f"journal: {supervisor.journal_path}")
    if report.interrupted:
        print(f"interrupted: resume with "
              f"migopt batch --workdir {args.workdir} --resume")
        return 130
    return 0 if report.quarantined == 0 and report.done == report.total else 1


def _run_sweep_command(args: argparse.Namespace) -> int:
    import json
    import signal

    from .runtime.executors import parse_hosts
    from .runtime.sweep import SweepConflictError, SweepSpec, run_sweep

    spec = None
    if args.spec:
        if args.spec == "-":
            data = json.load(sys.stdin)
        else:
            with open(args.spec, "r", encoding="utf-8") as fp:
                data = json.load(fp)
        try:
            spec = SweepSpec.from_dict(data)
        except ValueError as exc:
            raise SystemExit(f"bad sweep spec: {exc}")
    elif not args.resume:
        raise SystemExit("specify a sweep with --spec FILE (or --resume an "
                         "existing sweep workdir)")

    shutdown = {"requested": False}

    def _drain_signal(signum, frame):  # noqa: ARG001 - signal API
        if shutdown["requested"]:
            raise KeyboardInterrupt
        print(f"\nsweep: caught {signal.Signals(signum).name}, draining "
              "shards (signal again to abort hard)...", flush=True)
        shutdown["requested"] = True

    previous = {}
    for sig in (signal.SIGINT, signal.SIGTERM):
        try:
            previous[sig] = signal.signal(sig, _drain_signal)
        except (ValueError, OSError):
            pass
    try:
        run = run_sweep(
            args.workdir,
            spec=spec,
            hosts=parse_hosts(default_shards=args.shards),
            shards=args.shards,
            jobs_per_shard=args.jobs_per_shard,
            resume=args.resume,
            grace=args.grace,
            max_attempts=args.max_attempts,
            backoff_base=args.backoff,
            shard_attempts=args.shard_attempts,
            matrix_path=args.matrix,
            shutdown_check=lambda: shutdown["requested"],
            verbose=True,
        )
    except (FileExistsError, ValueError) as exc:
        raise SystemExit(str(exc))
    except SweepConflictError as exc:
        raise SystemExit(f"sweep merge conflict: {exc}")
    finally:
        for sig, handler in previous.items():
            try:
                signal.signal(sig, handler)
            except (ValueError, OSError):
                pass

    report = run.report
    print(
        f"sweep: {report.done}/{report.total} done, "
        f"{report.quarantined} quarantined, {report.adopted} adopted, "
        f"{len(report.shards)} shards"
        + (" [interrupted]" if report.interrupted else "")
    )
    for name in sorted(report.shards):
        shard = report.shards[name]
        print(f"  shard {name:12} {shard['done']}/{shard['total']} done, "
              f"{shard['quarantined']} quarantined, "
              f"{shard['adopted']} adopted")
    for summary in report.jobs:
        if summary["state"] != "done":
            print(f"  {summary['job_id']:40} {summary['state']}"
                  + (f"  ({summary.get('error', 'unknown error')})"
                     if summary["state"] == "quarantined" else ""))
    if run.matrix_path is not None:
        print(f"matrix: {run.published_rows} trend rows -> {run.matrix_path}")
    if args.report:
        _dump_metrics(args.report, report.to_dict())
    if report.interrupted:
        print(f"interrupted: resume with "
              f"migopt sweep --workdir {args.workdir} --resume")
        return 130
    return 0 if report.quarantined == 0 and report.done == report.total else 1


def _run_serve_command(args: argparse.Namespace) -> int:
    from .runtime.serve import run_server

    return run_server(
        args.workdir,
        host=args.host,
        port=args.port,
        num_workers=args.jobs,
        queue_limit=args.queue_limit,
        cache_max_bytes=args.cache_max_bytes,
        max_attempts=args.max_attempts,
        grace=args.grace,
        default_time_limit=args.time_limit,
        default_verify=args.verify,
        mem_limit_mb=args.mem_limit,
        default_cut_size=args.cut_size,
        npn_store=args.npn_store,
        drain_grace=args.drain_grace,
        verbose=args.verbose,
    )


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(prog="migopt", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p_stats = sub.add_parser("stats", help="print size/depth of a circuit")
    _add_input_args(p_stats)

    p_opt = sub.add_parser("optimize", help="functional hashing size optimization")
    _add_input_args(p_opt)
    p_opt.add_argument("--variant", default="BF", choices=VARIANTS)
    p_opt.add_argument("--depth-opt", action="store_true",
                       help="run algebraic depth optimization first (paper baseline)")
    p_opt.add_argument("--verify", action="store_true",
                       help="check functional equivalence after optimization")
    p_opt.add_argument("-o", "--output", help="write the result (BLIF, or .v Verilog)")
    p_opt.add_argument("--db", help="path to an alternative NPN database")
    _add_cut_args(p_opt)
    p_opt.add_argument(
        "--metrics", metavar="PATH",
        help="dump hot-path pass metrics (counters, cache rates, phase "
        "times) as JSON to PATH ('-' for stdout)",
    )

    p_map = sub.add_parser("map", help="optimize then technology-map")
    _add_input_args(p_map)
    p_map.add_argument("--variant", default=None, choices=VARIANTS,
                       help="functional hashing variant (default: map unoptimized)")
    p_map.add_argument("--db", help="path to an alternative NPN database")

    p_flow = sub.add_parser("flow", help="run a scripted optimization flow")
    _add_input_args(p_flow)
    p_flow.add_argument(
        "--script", default="depth,BF,TFD",
        help="comma-separated steps (variants, depth, depth-fast, strash, fraig)",
    )
    p_flow.add_argument(
        "--verify", nargs="?", const="sim", default="off",
        choices=["off", "sim", "cec"],
        help="per-step + final equivalence checking: 'sim' (simulation; the "
        "default when the flag is given bare) or 'cec' (adds budgeted SAT "
        "CEC for wide networks)",
    )
    p_flow.add_argument(
        "--time-limit", type=float, default=None, metavar="SECONDS",
        help="wall-clock budget shared by all steps; expired steps are "
        "recorded as 'timeout' and the partial result is returned",
    )
    p_flow.add_argument(
        "--conflict-limit", type=int, default=None, metavar="N",
        help="total SAT conflict budget shared by all steps",
    )
    p_flow.add_argument(
        "--on-error", default="raise", choices=["raise", "rollback", "skip"],
        help="what to do when a step fails or miscompiles: propagate "
        "('raise'), or keep the pre-step network and continue "
        "('rollback'/'skip')",
    )
    _add_sat_backend_arg(p_flow)
    p_flow.add_argument("-o", "--output", help="write the result (BLIF/.v/.bench)")
    p_flow.add_argument("--db", help="path to an alternative NPN database")
    _add_cut_args(p_flow)
    p_flow.add_argument(
        "--metrics", metavar="PATH",
        help="dump per-step hot-path metrics and merged totals as JSON to "
        "PATH ('-' for stdout)",
    )

    p_batch = sub.add_parser(
        "batch",
        help="supervised parallel batch optimization (process isolation, "
        "watchdog, crash-recoverable journal)",
    )
    p_batch.add_argument(
        "--generate", metavar="NAMES",
        help="comma-separated generator names, 'suite' (8 arithmetic), "
        f"'control' (6 random/control), or 'all': {sorted(GENERATORS)}",
    )
    p_batch.add_argument("--width", type=int, help="generator bit-width override")
    p_batch.add_argument(
        "--blif", action="append", default=[], metavar="FILE",
        help="add a BLIF circuit as a job (repeatable)",
    )
    p_batch.add_argument(
        "--bench", action="append", default=[], metavar="FILE",
        help="add an ISCAS .bench circuit as a job (repeatable)",
    )
    p_batch.add_argument(
        "--script", default="BF",
        help="comma-separated flow steps applied to every job",
    )
    p_batch.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="number of parallel worker processes",
    )
    p_batch.add_argument(
        "--time-limit", type=float, default=None, metavar="SECONDS",
        help="per-job wall-clock budget; the supervisor hard-kills "
        "(SIGTERM, then SIGKILL after --grace) workers that overrun it",
    )
    p_batch.add_argument(
        "--conflict-limit", type=int, default=None, metavar="N",
        help="per-job SAT conflict budget",
    )
    p_batch.add_argument(
        "--mem-limit", type=int, default=None, metavar="MB",
        help="per-worker address-space rlimit in MiB",
    )
    p_batch.add_argument(
        "--verify", default="sim", choices=["off", "sim", "cec"],
        help="in-worker per-step verification policy (default: sim)",
    )
    _add_cut_args(p_batch)
    _add_sat_backend_arg(p_batch)
    p_batch.add_argument(
        "--workdir", required=True, metavar="DIR",
        help="batch state directory (journal, specs, results, outputs, report)",
    )
    p_batch.add_argument(
        "--resume", action="store_true",
        help="continue an interrupted batch from its journal: finished "
        "jobs are kept, orphaned running jobs are re-queued",
    )
    p_batch.add_argument(
        "--shard", action="store_true",
        help="run as one shard of a sweep: take the job list from the "
        "journal that `migopt sweep` pre-submitted into --workdir "
        "(implies --resume)",
    )
    p_batch.add_argument(
        "--grace", type=float, default=2.0, metavar="SECONDS",
        help="SIGTERM-to-SIGKILL escalation window (default: 2.0)",
    )
    p_batch.add_argument(
        "--max-attempts", type=int, default=3, metavar="N",
        help="attempts per job before quarantine; retries degrade "
        "parameters (verify cec->sim, halved conflict/cut limits)",
    )
    p_batch.add_argument(
        "--backoff", type=float, default=0.5, metavar="SECONDS",
        help="base retry backoff, doubling per attempt (default: 0.5)",
    )
    p_batch.add_argument(
        "--no-outputs", action="store_true",
        help="skip writing optimized networks to workdir/outputs/",
    )
    p_batch.add_argument(
        "--report", metavar="PATH",
        help="also dump the batch report JSON to PATH ('-' for stdout)",
    )

    p_sweep = sub.add_parser(
        "sweep",
        help="sharded multi-host sweep over a declarative scenario matrix "
        "(instances x scripts x cut sizes x SAT backends x budgets); "
        "shards via $REPRO_SWEEP_HOSTS, resumes exactly-once",
    )
    p_sweep.add_argument(
        "--workdir", required=True, metavar="DIR",
        help="sweep state directory (sweep.json, shard-<host>/ batch "
        "workdirs, merged report.json)",
    )
    p_sweep.add_argument(
        "--spec", metavar="FILE",
        help="sweep spec JSON ('-' for stdin): {name, instances, scripts, "
        "cut_sizes, sat_backends, conflict_limits, verify, time_limit}; "
        "instances may override any axis locally",
    )
    p_sweep.add_argument(
        "--shards", type=int, default=2, metavar="N",
        help="number of local pseudo-host shards when $REPRO_SWEEP_HOSTS "
        "is unset (default: 2)",
    )
    p_sweep.add_argument(
        "--jobs-per-shard", type=int, default=1, metavar="N",
        help="worker processes inside each shard's batch (default: 1)",
    )
    p_sweep.add_argument(
        "--resume", action="store_true",
        help="continue an interrupted sweep: the persisted assignment in "
        "sweep.json is reused and every shard resumes from its journal",
    )
    p_sweep.add_argument(
        "--grace", type=float, default=2.0, metavar="SECONDS",
        help="SIGTERM-to-SIGKILL window for shard workers (default: 2.0)",
    )
    p_sweep.add_argument(
        "--max-attempts", type=int, default=3, metavar="N",
        help="attempts per job inside each shard before quarantine",
    )
    p_sweep.add_argument(
        "--backoff", type=float, default=0.5, metavar="SECONDS",
        help="base per-job retry backoff inside shards (default: 0.5)",
    )
    p_sweep.add_argument(
        "--shard-attempts", type=int, default=3, metavar="N",
        help="relaunches per shard process before the sweep gives up on "
        "its remaining jobs (default: 3)",
    )
    p_sweep.add_argument(
        "--matrix", metavar="PATH",
        help="append per-scenario trend rows to this JSONL file on a "
        "clean finish (e.g. benchmarks/results/MATRIX.jsonl)",
    )
    p_sweep.add_argument(
        "--report", metavar="PATH",
        help="also dump the merged report JSON to PATH ('-' for stdout)",
    )

    p_serve = sub.add_parser(
        "serve",
        help="optimization-as-a-service HTTP daemon with a crash-safe, "
        "content-addressed result cache (POST /jobs, GET /jobs/<id>)",
    )
    p_serve.add_argument(
        "--workdir", required=True, metavar="DIR",
        help="daemon state directory (result cache, job journals, stats)",
    )
    p_serve.add_argument("--host", default="127.0.0.1",
                         help="bind address (default: 127.0.0.1)")
    p_serve.add_argument("--port", type=int, default=8731,
                         help="bind port; 0 picks a free one (default: 8731)")
    p_serve.add_argument(
        "--jobs", type=int, default=2, metavar="N",
        help="concurrent optimization jobs, each in its own supervised "
        "worker subprocess (default: 2)",
    )
    p_serve.add_argument(
        "--queue-limit", type=int, default=16, metavar="N",
        help="queued-job bound; requests beyond it get HTTP 429 (default: 16)",
    )
    p_serve.add_argument(
        "--cache-max-bytes", type=int, default=None, metavar="BYTES",
        help="result-cache size bound; least-recently-used entries are "
        "evicted past it (default: unbounded)",
    )
    p_serve.add_argument(
        "--time-limit", type=float, default=None, metavar="SECONDS",
        help="default per-job wall-clock budget for requests without a "
        "'deadline' of their own",
    )
    p_serve.add_argument(
        "--verify", default="sim", choices=["off", "sim", "cec"],
        help="default per-step verification policy (default: sim); "
        "'off' results are never cached",
    )
    p_serve.add_argument(
        "--mem-limit", type=int, default=None, metavar="MB",
        help="per-worker address-space rlimit in MiB",
    )
    p_serve.add_argument(
        "--cut-size", type=int, default=None, choices=[4, 5, 6],
        help="default cut width for requests that do not set their own "
        "'cut_size' (default: 4)",
    )
    p_serve.add_argument(
        "--npn-store", metavar="PATH", default=None,
        help="persistent NPN-5/6 store the workers share for cut sizes "
        "5/6; daemon configuration, never taken from requests",
    )
    p_serve.add_argument(
        "--max-attempts", type=int, default=2, metavar="N",
        help="worker attempts per request before it fails (default: 2)",
    )
    p_serve.add_argument(
        "--grace", type=float, default=2.0, metavar="SECONDS",
        help="worker SIGTERM-to-SIGKILL escalation window (default: 2.0)",
    )
    p_serve.add_argument(
        "--drain-grace", type=float, default=30.0, metavar="SECONDS",
        help="on SIGTERM, how long running jobs may finish before being "
        "journaled resumable (default: 30)",
    )
    p_serve.add_argument("--verbose", action="store_true",
                         help="log requests and recovery decisions")

    p_exact = sub.add_parser("exact", help="exact synthesis of a truth table")
    p_exact.add_argument("--tt", required=True, help="truth table, e.g. 0x1668")
    p_exact.add_argument("--vars", type=int, default=4)
    p_exact.add_argument("--budget", type=int, default=200000,
                         help="conflict budget per size")
    _add_sat_backend_arg(p_exact)
    p_exact.add_argument(
        "--metrics", metavar="PATH",
        help="dump per-size outcomes and solver counters as JSON to PATH "
        "('-' for stdout); same sat_* schema as flow --metrics and "
        "benchmarks/bench_exact.py",
    )

    p_db = sub.add_parser("db", help="NPN database maintenance")
    db_sub = p_db.add_subparsers(dest="db_command", required=True)
    p_db_gen = db_sub.add_parser(
        "generate",
        help="generate/improve the NPN-4 database (tree phase + SAT phase; "
        "see python -m repro.database.generate)",
    )
    p_db_gen.add_argument("--out", default=None, help="output JSONL path")
    p_db_gen.add_argument("--budget", type=int, default=30000,
                          help="conflicts per SAT call")
    p_db_gen.add_argument(
        "--sat-seconds", type=float, default=0.0,
        help="time for the SAT improvement phase (0 = trees only)",
    )
    p_db_gen.add_argument(
        "--jobs", type=int, default=0, metavar="N",
        help="run the SAT phase across N supervised worker subprocesses "
        "(0 = in-process serial; content is identical either way, and a "
        "killed parallel run resumes from its job journal)",
    )
    _add_sat_backend_arg(p_db_gen)
    p_db_gen.add_argument("--fresh", action="store_true",
                          help="regenerate from scratch")
    p_db_gen.add_argument("--largest-first", action="store_true",
                          help="process the biggest entries first")
    p_db_gen.add_argument("--quiet", action="store_true")
    p_db_imp = db_sub.add_parser(
        "improve",
        help="tighten unproven entries of a persistent NPN-5/6 store with "
        "budgeted exact synthesis (serial, or across supervised workers)",
    )
    p_db_imp.add_argument("--store", required=True, metavar="PATH",
                          help="the NpnStore log to improve in place")
    p_db_imp.add_argument("--vars", type=int, default=5, choices=[4, 5, 6],
                          help="store arity (default: 5)")
    p_db_imp.add_argument("--budget", type=int, default=30000,
                          help="conflicts per SAT call (default: 30000)")
    p_db_imp.add_argument(
        "--jobs", type=int, default=0, metavar="N",
        help="improve across N supervised worker subprocesses (0 = "
        "in-process serial; store content is identical either way, and "
        "a killed parallel run resumes from its job journal)",
    )
    p_db_imp.add_argument(
        "--limit", type=int, default=None, metavar="N",
        help="improve at most N classes (largest first)",
    )
    p_db_imp.add_argument(
        "--time-limit", type=float, default=None, metavar="SECONDS",
        help="wall-clock bound for the whole improvement pass",
    )
    p_db_imp.add_argument(
        "--workdir", default=None, metavar="DIR",
        help="batch state directory for --jobs > 0 (default: a fresh "
        "temp dir; reuse one to resume an interrupted pass)",
    )
    _add_sat_backend_arg(p_db_imp)
    p_db_imp.add_argument("--quiet", action="store_true")

    args = parser.parse_args(argv)

    if args.command == "stats":
        mig = _load_network(args)
        print(f"{mig.name}: {mig.num_pis} PIs, {mig.num_pos} POs, "
              f"size {mig.num_gates}, depth {mig.depth()}")
        return 0

    if args.command == "optimize":
        mig = _load_network(args)
        db, store = _resolve_db(args)
        baseline = optimize_depth(mig) if args.depth_opt else mig
        start = time.perf_counter()
        optimized, stats = functional_hashing(
            baseline, db, args.variant,
            cut_size=args.cut_size if args.cut_size is not None else 4,
            return_stats=True,
        )
        runtime = time.perf_counter() - start
        print(f"{mig.name}: {baseline.num_gates}/{baseline.depth()} -> "
              f"{optimized.num_gates}/{optimized.depth()} "
              f"({args.variant}, {runtime:.2f}s)")
        if store is not None:
            print(f"npn-store: {len(store)} classes in {store.path}")
            store.close()
        if args.metrics:
            _dump_metrics(args.metrics, stats.metrics.to_dict())
        if args.verify:
            ok = check_equivalence(baseline, optimized)
            print(f"equivalence: {'OK' if ok else 'FAILED'}")
            if not ok:
                return 1
        if args.output:
            _write_network(optimized, args.output)
            print(f"written to {args.output}")
        return 0

    if args.command == "map":
        mig = _load_network(args)
        db = NpnDatabase.load(args.db)
        if args.variant is not None:
            mig = functional_hashing(mig, db, args.variant)
        result = map_mig(mig)
        print(f"{mig.name}: mapped {result}")
        return 0

    if args.command == "flow":
        from .opt.flow import run_flow
        from .runtime.budget import Budget

        mig = _load_network(args)
        db, store = _resolve_db(args)
        script = [step for step in args.script.split(",") if step]
        budget = None
        if args.time_limit is not None or args.conflict_limit is not None:
            budget = Budget.from_limits(
                time_limit=args.time_limit, conflict_limit=args.conflict_limit
            )
        print(f"{mig.name}: {mig.num_gates}/{mig.depth()}  script: {script}")
        result, history = run_flow(
            mig, db, script, verbose=True,
            budget=budget, verify=args.verify, on_error=args.on_error,
            cut_size=args.cut_size, sat_backend=args.sat_backend,
        )
        print(f"final: {result.num_gates}/{result.depth()} "
              f"({sum(step.runtime for step in history):.2f}s total)")
        if store is not None:
            print(f"npn-store: {len(store)} classes in {store.path}")
            store.close()
        if args.metrics:
            from .runtime.metrics import PassMetrics

            totals = PassMetrics()
            steps_payload = []
            for stats in history:
                entry = {"step": stats.step, "status": stats.status,
                         "runtime": round(stats.runtime, 6)}
                if stats.metrics is not None:
                    entry["metrics"] = stats.metrics.to_dict()
                    totals.merge(stats.metrics)
                steps_payload.append(entry)
            _dump_metrics(
                args.metrics,
                {"steps": steps_payload, "totals": totals.to_dict()},
            )
        bad = [s for s in history if s.status != "ok"]
        if bad:
            summary = ", ".join(f"{s.step}={s.status}" for s in bad)
            print(f"degraded steps: {summary}")
        if args.verify != "off":
            ok = check_equivalence(mig, result)
            print(f"equivalence: {'OK' if ok else 'FAILED'}")
            if not ok:
                return 1
        if args.output:
            _write_network(result, args.output)
            print(f"written to {args.output}")
        return 0

    if args.command == "batch":
        return _run_batch_command(args)
    if args.command == "sweep":
        return _run_sweep_command(args)

    if args.command == "serve":
        return _run_serve_command(args)

    if args.command == "exact":
        spec = int(args.tt, 16)
        result = synthesize_exact(
            spec, args.vars, conflict_budget=args.budget,
            sat_backend=args.sat_backend,
        )
        if args.metrics:
            _dump_metrics(args.metrics, {
                "spec": f"0x{spec:x}",
                "num_vars": args.vars,
                "size": result.size,
                "proven": result.proven,
                "runtime": round(result.runtime, 6),
                "k_outcomes": {str(k): v for k, v in result.k_outcomes.items()},
                "sat_conflicts": result.conflicts,
                "sat_propagations": result.propagations,
                "sat_decisions": result.decisions,
                "sat_restarts": result.restarts,
                "sat_learned": result.learned,
                "sat_backend_events": dict(result.backend_events),
            })
        if result.mig is None:
            print(f"no MIG found within budget (outcomes: {result.k_outcomes})")
            return 1
        print(f"0x{spec:x}: size {result.size} "
              f"({'proven minimal' if result.proven else 'upper bound'}), "
              f"{result.runtime:.2f}s, {result.conflicts} conflicts")
        if result.backend_events:
            lanes = ", ".join(
                f"{key}={count}"
                for key, count in sorted(result.backend_events.items())
            )
            print(f"backend lanes: {lanes}")
        print(result.mig.to_expression(result.mig.outputs[0]))
        return 0

    if args.command == "db":
        if args.db_command == "generate":
            from .database.generate import main as db_generate_main

            forwarded = ["--budget", str(args.budget),
                         "--sat-seconds", str(args.sat_seconds),
                         "--jobs", str(args.jobs),
                         "--sat-backend", args.sat_backend]
            if args.out is not None:
                forwarded += ["--out", args.out]
            if args.fresh:
                forwarded.append("--fresh")
            if args.largest_first:
                forwarded.append("--largest-first")
            if args.quiet:
                forwarded.append("--quiet")
            return db_generate_main(forwarded)
        if args.db_command == "improve":
            from .database.store import NpnStore, improve_store

            with NpnStore.open(args.store, num_vars=args.vars) as store:
                before = store.stats()
                summary = improve_store(
                    store,
                    budget=args.budget,
                    jobs=args.jobs,
                    limit=args.limit,
                    time_limit=args.time_limit,
                    sat_backend=args.sat_backend,
                    workdir=args.workdir,
                    verbose=not args.quiet,
                )
            after = store.stats()
            print(
                f"store {args.store}: {after['entries']} classes "
                f"({after['proven']} proven, was {before['proven']}); "
                f"{summary['attempted']} attempted, "
                f"{summary['improved']} improved, "
                f"{summary['proven']} newly proven, "
                f"{summary['conflicts']} conflicts"
            )
            return 0
        raise AssertionError("unreachable")

    raise AssertionError("unreachable")


if __name__ == "__main__":
    sys.exit(main())

"""A small generic standard-cell library for technology mapping.

Table IV of the paper reports area/depth after mapping with ABC onto a
standard-cell library.  As a substitute (DESIGN.md §4) we provide a
compact generic library; what matters for the reproduction is that the
same mapper and library are applied to every optimization variant, so
that *relative* area/depth across variants is meaningful.

Cells are matched by the NPN class of their function (up to 4 inputs):
edge inverters are treated as free during matching, a common
simplification that is uniform across all variants.  Cell areas are
loosely modelled on typical NAND2-equivalent gate areas.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.npn import npn_representative
from ..core.truth_table import tt_extend, tt_maj, tt_mask, tt_not, tt_var

__all__ = ["Cell", "CellLibrary", "default_library"]


@dataclass(frozen=True)
class Cell:
    """One library cell: function (truth table), geometry, timing."""

    name: str
    num_inputs: int
    function: int  # truth table over num_inputs variables
    area: float
    delay: float = 1.0


class CellLibrary:
    """A set of cells indexed by the NPN class of their function."""

    def __init__(self, cells: list[Cell], match_vars: int = 4) -> None:
        self.cells = list(cells)
        self.match_vars = match_vars
        self._by_class: dict[int, Cell] = {}
        for cell in cells:
            extended = tt_extend(cell.function, cell.num_inputs, match_vars)
            rep = npn_representative(extended, match_vars)
            best = self._by_class.get(rep)
            if best is None or cell.area < best.area:
                self._by_class[rep] = cell

    def match(self, tt: int) -> Cell | None:
        """Return the cheapest cell whose NPN class matches *tt* (over match_vars)."""
        return self._by_class.get(npn_representative(tt, self.match_vars))

    def __len__(self) -> int:
        return len(self.cells)


def default_library() -> CellLibrary:
    """The default generic library used by the Table IV benchmarks."""
    n = 4
    mask2 = tt_mask(2)
    a2, b2 = tt_var(2, 0), tt_var(2, 1)
    a3, b3, c3 = tt_var(3, 0), tt_var(3, 1), tt_var(3, 2)
    mask3 = tt_mask(3)
    a4, b4, c4, d4 = (tt_var(4, i) for i in range(4))

    cells = [
        Cell("inv", 1, tt_not(tt_var(1, 0), 1), 1.0),
        Cell("nand2", 2, tt_not(a2 & b2, 2), 2.0),
        Cell("nor2", 2, tt_not(a2 | b2, 2), 2.0),
        Cell("xor2", 2, a2 ^ b2, 5.0),
        Cell("nand3", 3, tt_not(a3 & b3 & c3, 3), 3.0),
        Cell("nor3", 3, tt_not(a3 | b3 | c3, 3), 3.0),
        Cell("aoi21", 3, tt_not((a3 & b3) | c3, 3), 3.0),
        Cell("oai21", 3, tt_not((a3 | b3) & c3, 3), 3.0),
        Cell("maj3", 3, tt_maj(a3, b3, c3), 5.0),
        Cell("mux2", 3, (c3 & a3) | ((c3 ^ mask3) & b3), 5.0),
        Cell("xor3", 3, a3 ^ b3 ^ c3, 8.0),
        Cell("nand4", 4, tt_not(a4 & b4 & c4 & d4, 4), 4.0),
        Cell("nor4", 4, tt_not(a4 | b4 | c4 | d4, 4), 4.0),
        Cell("aoi22", 4, tt_not((a4 & b4) | (c4 & d4), 4), 4.0),
        Cell("oai22", 4, tt_not((a4 | b4) & (c4 | d4), 4), 4.0),
        Cell("and2or2", 4, (a4 & b4) | c4 | d4, 4.5),
        Cell("maj3x", 4, tt_maj(a4, b4, c4) ^ d4, 9.0),
        Cell("fa_sum", 3, a3 ^ b3 ^ c3, 8.0),
    ]
    return CellLibrary(cells, match_vars=n)

"""Mapped netlists: materialization and verification of a mapping cover.

:func:`repro.mapping.mapper.map_mig` selects a cell cover; this module
turns that cover into an explicit cell-level netlist that can be
simulated and equivalence-checked against the source MIG — the mapper's
functional correctness proof used by the test-suite — and reports
area/cell-usage statistics for Table IV style analysis.

Cell instances evaluate their stored truth table after resolving the NPN
transform between the cut function and the cell function, exactly
mirroring how a physical library cell would be bound.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.mig import Mig
from ..core.npn import apply_transform, invert_transform, npn_canonize
from ..core.truth_table import tt_extend, tt_mask
from .library import Cell
from .mapper import MappingResult

__all__ = ["CellInstance", "MappedNetlist", "materialize"]


@dataclass(frozen=True)
class CellInstance:
    """One bound cell: which cell, which source nodes feed it, its function.

    ``function`` is the cut's truth table over ``inputs`` (already over
    the mapper's match arity), so evaluation does not need to re-derive
    the NPN binding.
    """

    name: str
    cell: Cell
    output: int  # source-MIG node this instance implements
    inputs: tuple[int, ...]  # source-MIG nodes feeding it
    function: int  # truth table over the match arity


@dataclass
class MappedNetlist:
    """A flat cell-level netlist produced from a mapping cover."""

    source: Mig
    instances: list[CellInstance] = field(default_factory=list)

    @property
    def area(self) -> float:
        """Total cell area."""
        return sum(inst.cell.area for inst in self.instances)

    @property
    def num_cells(self) -> int:
        """Number of cell instances."""
        return len(self.instances)

    def cell_usage(self) -> dict[str, int]:
        """Instance count per library cell."""
        usage: dict[str, int] = {}
        for inst in self.instances:
            usage[inst.cell.name] = usage.get(inst.cell.name, 0) + 1
        return dict(sorted(usage.items()))

    def depth(self) -> int:
        """Longest cell path from inputs to any output."""
        level: dict[int, int] = {}
        by_output = {inst.output: inst for inst in self.instances}

        def level_of(node: int) -> int:
            if node not in by_output:
                return 0
            if node in level:
                return level[node]
            inst = by_output[node]
            value = 1 + max((level_of(i) for i in inst.inputs), default=0)
            level[node] = value
            return value

        return max(
            (level_of(s >> 1) for s in self.source.outputs),
            default=0,
        )

    def simulate(self) -> list[int]:
        """Exhaustively simulate the cell netlist (source PIs <= 14)."""
        mig = self.source
        if mig.num_pis > 14:
            raise ValueError("exhaustive netlist simulation limited to 14 inputs")
        n = mig.num_pis
        mask = tt_mask(n)
        from ..core.truth_table import tt_var

        values: dict[int, int] = {0: 0}
        for i in range(n):
            values[1 + i] = tt_var(n, i)
        by_output = {inst.output: inst for inst in self.instances}

        def value_of(node: int) -> int:
            if node in values:
                return values[node]
            inst = by_output[node]
            inputs = [value_of(i) for i in inst.inputs]
            out = 0
            width = len(inst.inputs)
            for m in range(1 << n):
                idx = 0
                for j in range(width):
                    if (inputs[j] >> m) & 1:
                        idx |= 1 << j
                if (inst.function >> idx) & 1:
                    out |= 1 << m
            values[node] = out
            return out

        results = []
        for s in mig.outputs:
            v = value_of(s >> 1)
            results.append(v ^ (mask if s & 1 else 0))
        return results

    def verify(self) -> bool:
        """Check the netlist against the source MIG (exhaustive)."""
        return self.simulate() == self.source.simulate()


def materialize(mig: Mig, result: MappingResult, match_vars: int = 4) -> MappedNetlist:
    """Build a :class:`MappedNetlist` from a mapping cover.

    Each cover entry's cut function is reduced to the cut arity and stored
    with the instance; the NPN machinery only validates that the bound
    cell really is in the cut's class.
    """
    netlist = MappedNetlist(source=mig)
    for node, (cell, leaves) in sorted(result.cover.items()):
        tt = mig.cut_function(node, leaves)
        tt_m = tt_extend(tt, len(leaves), match_vars)
        # Validate the binding: the cell must be NPN-equivalent to the cut.
        cut_rep, _ = npn_canonize(tt_m, match_vars)
        cell_tt = tt_extend(cell.function, cell.num_inputs, match_vars)
        cell_rep, _ = npn_canonize(cell_tt, match_vars)
        if cut_rep != cell_rep:
            raise ValueError(
                f"cover binds node {node} to cell {cell.name!r} of a different NPN class"
            )
        netlist.instances.append(
            CellInstance(
                name=f"u{node}",
                cell=cell,
                output=node,
                inputs=tuple(leaves),
                function=tt,
            )
        )
    return netlist

"""Cut-based technology mapping onto a standard-cell library.

The Table IV experiments of the paper map the optimized MIGs with ABC and
report area and depth of the mapped circuit.  This module provides the
substitute mapper (DESIGN.md §4): classic priority-cut structural mapping
in the style of ref. [11] of the paper:

1. enumerate k-feasible cuts of every gate,
2. match each cut's function against the library by NPN class,
3. choose, per gate, the match minimizing ``(arrival, area_flow)`` —
   depth-oriented mapping with area-flow tie-breaking,
4. extract the cover from the outputs and report exact area, cell count,
   and depth.

Edge inverters are free during matching (uniform across all variants; see
the library module).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.cuts import enumerate_cuts
from ..core.mig import Mig
from ..core.truth_table import tt_extend
from .library import Cell, CellLibrary, default_library

__all__ = ["MappingResult", "map_mig"]


@dataclass
class MappingResult:
    """Outcome of technology mapping."""

    area: float
    depth: int
    num_cells: int
    #: chosen (cell, leaves) per covered node
    cover: dict[int, tuple[Cell, tuple[int, ...]]]

    def __str__(self) -> str:
        return f"area={self.area:.1f} depth={self.depth} cells={self.num_cells}"


@dataclass
class _Match:
    cell: Cell
    leaves: tuple[int, ...]
    arrival: int
    area_flow: float


def map_mig(
    mig: Mig,
    library: CellLibrary | None = None,
    cut_size: int = 4,
    cut_limit: int = 10,
) -> MappingResult:
    """Map *mig* onto *library*; returns area/depth of the mapped netlist."""
    if library is None:
        library = default_library()
    cuts = enumerate_cuts(mig, k=cut_size, cut_limit=cut_limit)
    fanout = mig.fanout_counts()

    best: dict[int, _Match] = {}
    for node in mig.gates():
        node_best: _Match | None = None
        for leaves in cuts[node]:
            if leaves == (node,):
                continue
            try:
                tt = mig.cut_function(node, leaves)
            except ValueError:
                continue
            tt4 = tt_extend(tt, len(leaves), library.match_vars)
            cell = library.match(tt4)
            if cell is None:
                continue
            arrival = 0
            flow = cell.area
            feasible = True
            for leaf in leaves:
                if mig.is_gate(leaf):
                    leaf_match = best.get(leaf)
                    if leaf_match is None:
                        feasible = False
                        break
                    arrival = max(arrival, leaf_match.arrival)
                    flow += leaf_match.area_flow / max(1, fanout[leaf])
            if not feasible:
                continue
            match = _Match(cell, leaves, arrival + 1, flow)
            if node_best is None or (match.arrival, match.area_flow) < (
                node_best.arrival,
                node_best.area_flow,
            ):
                node_best = match
        if node_best is None:
            raise RuntimeError(
                f"node {node} has no library match; the library must cover MAJ3"
            )
        best[node] = node_best

    # Cover extraction from the outputs.
    cover: dict[int, tuple[Cell, tuple[int, ...]]] = {}
    area = 0.0
    depth = 0
    stack = [s >> 1 for s in mig.outputs if mig.is_gate(s >> 1)]
    visited: set[int] = set()
    while stack:
        node = stack.pop()
        if node in visited:
            continue
        visited.add(node)
        match = best[node]
        cover[node] = (match.cell, match.leaves)
        area += match.cell.area
        depth = max(depth, match.arrival)
        for leaf in match.leaves:
            if mig.is_gate(leaf):
                stack.append(leaf)
    return MappingResult(area=area, depth=depth, num_cells=len(cover), cover=cover)

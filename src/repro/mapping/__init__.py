"""Technology mapping onto a generic standard-cell library (Table IV)."""

from .library import Cell, CellLibrary, default_library
from .mapper import MappingResult, map_mig
from .netlist import CellInstance, MappedNetlist, materialize

__all__ = [
    "Cell",
    "CellLibrary",
    "default_library",
    "MappingResult",
    "map_mig",
    "CellInstance",
    "MappedNetlist",
    "materialize",
]

"""Depth-oriented MIG optimization (the algorithm family of refs [3], [4]).

The paper's experiments start from "heavily optimized" MIGs produced by
the EPFL depth-reduction scripts.  This pass reproduces that substrate: it
repeatedly rebuilds the network in topological order, constructing every
gate through :func:`repro.opt.algebraic.depth_aware_maj`, which applies
the Ω axioms (associativity, complementary associativity, distributivity)
whenever an algebraically equivalent form is shallower.  This is the
classic MIG depth optimization that, e.g., restructures a ripple-carry
chain into a carry-lookahead-like form.
"""

from __future__ import annotations

from ..core.mig import Mig
from .algebraic import LevelBuilder, depth_aware_maj

__all__ = ["optimize_depth"]


def optimize_depth(
    mig: Mig,
    rounds: int = 4,
    allow_size_increase: bool = True,
) -> Mig:
    """Iteratively reduce MIG depth; stops early at a fixpoint.

    ``allow_size_increase`` enables the distributivity rule, which
    duplicates operand pairs to flatten critical paths (depth for size —
    the trade the paper's baseline flow makes).
    """
    current = mig
    for _ in range(rounds):
        rebuilt = _depth_pass(current, allow_size_increase)
        if (
            rebuilt.depth() > current.depth()
            or (rebuilt.depth() == current.depth() and rebuilt.num_gates >= current.num_gates)
        ):
            break
        current = rebuilt
    return current


def _depth_pass(mig: Mig, allow_size_increase: bool) -> Mig:
    new = Mig.like(mig)
    builder = LevelBuilder(new)
    mapping: dict[int, int] = {0: 0}
    for i in range(1, mig.num_pis + 1):
        mapping[i] = 2 * i
    for node in mig.gates():
        a, b, c = mig.fanins(node)
        mapped = (
            mapping[a >> 1] ^ (a & 1),
            mapping[b >> 1] ^ (b & 1),
            mapping[c >> 1] ^ (c & 1),
        )
        mapping[node] = depth_aware_maj(builder, *mapped, allow_size_increase)
    for s, name in zip(mig.outputs, mig.output_names):
        new.add_po(mapping[s >> 1] ^ (s & 1), name)
    return new.cleanup()

"""Mapped-then-reoptimized round trips: resynthesis through the mapper.

The paper's Table IV maps the optimized MIGs onto a standard-cell
library; a natural follow-up experiment is the *round trip* — map the
network, then rebuild an MIG from the mapped cover and optimize again.
The cover is a functionally equivalent restructuring of the network
along completely different cut boundaries than the rewriter chose, so a
subsequent functional-hashing pass sees fresh cuts (the "reshaping
algorithms" the paper's closing remark speculates about).

:func:`remap_resynth` is exposed to flow scripts as the ``remap`` step::

    migopt flow --generate adder --script BF,remap,BF
"""

from __future__ import annotations

from ..core.mig import CONST0, Mig, make_signal
from ..core.truth_table import tt_extend
from ..database.npn_db import NpnDatabase
from ..mapping.library import CellLibrary
from ..mapping.mapper import map_mig

__all__ = ["remap_resynth"]


def remap_resynth(
    mig: Mig,
    db: NpnDatabase,
    library: CellLibrary | None = None,
    cut_size: int = 4,
    cut_limit: int = 10,
) -> Mig:
    """Map *mig* and resynthesize an MIG from the mapped cover.

    Each cell of the cover computes one cut function; the new network
    instantiates the database's minimum MIG for exactly that function
    over the cell's leaves (Algorithm 1's rebuild step, applied to the
    mapper's cut choice instead of the rewriter's).  The result is
    functionally equivalent by construction and typically *worse* in
    size than the input — the value is the fresh structure it hands the
    next optimization step, not the intermediate itself.
    """
    result = map_mig(mig, library=library, cut_size=cut_size, cut_limit=cut_limit)
    new = Mig.like(mig)
    mapping: dict[int, int] = {0: CONST0}
    for i in range(1, mig.num_pis + 1):
        mapping[i] = make_signal(i)
    # Node ids are topological, so ascending order visits leaves first;
    # every gate leaf of a cover cell is itself covered by construction.
    for node in sorted(result.cover):
        _, leaves = result.cover[node]
        tt = mig.cut_function(node, leaves)
        width = db.num_vars
        tt_wide = tt_extend(tt, len(leaves), width)
        leaf_signals = [mapping[leaf] for leaf in leaves]
        leaf_signals += [CONST0] * (width - len(leaf_signals))
        mapping[node] = db.rebuild(new, tt_wide, leaf_signals)
    for s, name in zip(mig.outputs, mig.output_names):
        new.add_po(mapping[s >> 1] ^ (s & 1), name)
    return new

"""SAT sweeping ("fraiging") for MIGs of any width.

:func:`repro.opt.size_opt.functional_reduce` merges functionally
equivalent gates but needs exhaustive simulation (<= 14 inputs).  This
pass scales to arbitrary widths using the classic FRAIG recipe of
Kuehlmann et al. (ref. [2] of the paper, the original AIG application):

1. simulate the network on random bit-parallel vectors — equal-signature
   gates (up to complement) are *candidate* equivalences;
2. rebuild the network in topological order, Tseitin-encoding every new
   gate into one incremental SAT solver;
3. when a gate's signature matches an earlier representative, ask the
   solver (under assumptions, with a conflict budget) whether the two
   signals can ever differ: an UNSAT answer is a proof and the gate is
   merged; a model is a **counterexample**, which is simulated to refine
   every signature so false candidate classes split and stop wasting
   SAT calls (without refinement, e.g. wide AND cones all share the
   all-zero signature and shadow each other).

Budget-exhausted queries keep the gate — the pass only merges on proof.
"""

from __future__ import annotations

import random

from ..core.mig import Mig
from ..core.simengine import random_signature_words, simulate_all_nodes
from ..runtime.budget import Budget
from ..sat.solver import Solver

__all__ = ["fraig"]


def fraig(
    mig: Mig,
    num_words: int = 4,
    width: int = 64,
    seed: int = 0x5EED,
    conflict_budget: int = 3000,
    max_cex_rounds: int = 64,
    budget: Budget | None = None,
) -> Mig:
    """Merge provably equivalent gates; returns the swept network.

    A shared :class:`~repro.runtime.budget.Budget` degrades the pass
    gracefully: once it expires, remaining candidate equivalences are
    simply kept unmerged (always sound — the pass only merges on proof).
    """
    rng = random.Random(seed)
    mask = (1 << width) - 1

    # 1. Random-simulation signatures on the ORIGINAL network (mutable:
    # counterexample words get appended during the sweep).  The node-major
    # draws go through the shared engine helper (historical order, so the
    # seed reproduces), and the per-word loops collapse into ONE
    # bit-parallel pass of width num_words*width: bitwise gate operations
    # never mix bit positions, so word w of a signature is bits
    # [w*width, (w+1)*width) of the combined value.
    pi_words = random_signature_words(rng, mig.num_pis, num_words, width)
    combined = [
        sum(word << (w * width) for w, word in enumerate(words))
        for words in pi_words
    ]
    node_values = simulate_all_nodes(mig, combined, num_words * width)
    signatures: dict[int, list[int]] = {
        node: [(value >> (w * width)) & mask for w in range(num_words)]
        for node, value in enumerate(node_values)
    }

    def canonical(node: int) -> tuple[tuple[int, ...], bool]:
        sig = signatures[node]
        if sig[0] & 1:
            return tuple(w ^ mask for w in sig), True
        return tuple(sig), False

    # 2. Rebuild with an incremental SAT encoding of the NEW network.
    new = Mig.like(mig)
    solver = Solver()
    const_var = solver.new_var()
    solver.add_clause([-const_var])
    node_var: dict[int, int] = {0: const_var}
    for i in range(1, mig.num_pis + 1):
        node_var[i] = solver.new_var()

    def lit_of(signal: int) -> int:
        var = node_var[signal >> 1]
        return -var if signal & 1 else var

    encoded_next = [mig.num_pis + 1]

    def encode_up_to_date() -> None:
        start = encoded_next[0]
        encoded_next[0] = new.num_nodes
        for node in range(start, new.num_nodes):
            a, b, c = new.fanins(node)
            out = solver.new_var()
            node_var[node] = out
            la, lb, lc = lit_of(a), lit_of(b), lit_of(c)
            solver.add_clause([-la, -lb, out])
            solver.add_clause([-la, -lc, out])
            solver.add_clause([-lb, -lc, out])
            solver.add_clause([la, lb, -out])
            solver.add_clause([la, lc, -out])
            solver.add_clause([lb, lc, -out])

    # representative: canonical signature -> (old node, new signal of the
    # canonical phase).  `processed` lets us re-key after refinements.
    representative: dict[tuple[int, ...], int] = {}
    processed: list[tuple[int, int]] = []  # (old node, canonical-phase signal)
    cex_rounds = 0

    def register(old_node: int, canon_signal: int) -> None:
        representative.setdefault(canonical(old_node)[0], canon_signal)

    def refine_with_counterexample() -> None:
        """Append the solver model as a saturated signature word; re-key."""
        nonlocal cex_rounds
        cex_rounds += 1
        pattern = [
            1 if solver.model_value(node_var[i]) else 0
            for i in range(1, mig.num_pis + 1)
        ]
        values = simulate_all_nodes(mig, pattern, 1, backend="bigint")
        for node, value in enumerate(values):
            signatures[node].append(mask if value else 0)
        representative.clear()
        for old_node, canon_signal in processed:
            register(old_node, canon_signal)

    mapping: dict[int, int] = {0: 0}
    for i in range(1, mig.num_pis + 1):
        mapping[i] = 2 * i
        sig, phase = canonical(i)
        representative.setdefault(sig, 2 * i ^ int(phase))
        processed.append((i, 2 * i ^ int(phase)))

    for node in mig.gates():
        a, b, c = mig.fanins(node)
        signal = new.maj(
            mapping[a >> 1] ^ (a & 1),
            mapping[b >> 1] ^ (b & 1),
            mapping[c >> 1] ^ (c & 1),
        )
        sig, phase = canonical(node)
        canon_signal = signal ^ int(phase)
        existing = representative.get(sig)
        if (
            existing is not None
            and existing != canon_signal
            and (budget is None or not budget.expired())
        ):
            encode_up_to_date()
            d = solver.new_var()
            l1, l2 = lit_of(existing), lit_of(canon_signal)
            solver.add_clause([-d, l1, l2])
            solver.add_clause([-d, -l1, -l2])
            call_budget = conflict_budget
            deadline = None
            if budget is not None:
                call_budget = budget.call_conflict_budget(conflict_budget)
                deadline = budget.deadline
            before_conflicts = solver.conflicts
            answer = solver.solve(
                assumptions=[d], conflict_budget=call_budget, deadline=deadline
            )
            if budget is not None:
                budget.charge_conflicts(solver.conflicts - before_conflicts)
            if answer is False:
                signal = existing ^ int(phase)
                canon_signal = existing
            elif answer is True and cex_rounds < max_cex_rounds:
                refine_with_counterexample()
                sig, phase = canonical(node)
                canon_signal = signal ^ int(phase)
        register(node, canon_signal)
        processed.append((node, canon_signal))
        mapping[node] = signal
    for s, name in zip(mig.outputs, mig.output_names):
        new.add_po(mapping[s >> 1] ^ (s & 1), name)
    return new.cleanup()

"""Scripted optimization flows and convergence iteration.

The paper's closing remark: *"In all experiments, we have performed the
functional hashing algorithm only once.  Running it several times or
combining it with other optimization or reshaping algorithms will likely
lead to further improvements."*  This module provides exactly that
machinery — ABC-script-style pass sequencing over MIGs:

>>> from repro.opt.flow import run_flow
>>> best, history = run_flow(mig, db, ["depth", "BF", "TFD", "BF"])

Recognized steps: any functional-hashing variant acronym (``T``, ``TD``,
``TF``, ``TFD``, ``B``, ``BD``, ``BF``, ``BFD``), ``depth`` (algebraic
depth optimization), ``depth-fast`` (associativity only, size-neutral),
``strash`` (structural-hash rebuild), and ``fraig`` (SAT sweeping, for
networks the solver can handle).  :func:`optimize_until_convergence`
repeats one variant to a fixpoint — the ablation benchmark
``bench_ablation_iterate.py`` quantifies the paper's remark with it.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..core.mig import Mig
from ..database.npn_db import NpnDatabase
from ..rewriting.engine import VARIANTS, functional_hashing
from .depth_opt import optimize_depth
from .size_opt import strash_rebuild

__all__ = ["FlowStepStats", "run_flow", "optimize_until_convergence"]


@dataclass(frozen=True)
class FlowStepStats:
    """Bookkeeping for one executed flow step."""

    step: str
    size_before: int
    depth_before: int
    size_after: int
    depth_after: int
    runtime: float


def _apply_step(mig: Mig, db: NpnDatabase | None, step: str) -> Mig:
    name = step.strip()
    upper = name.upper()
    if upper in VARIANTS:
        if db is None:
            raise ValueError(f"step {step!r} needs an NPN database")
        return functional_hashing(mig, db, upper)
    if name == "depth":
        return optimize_depth(mig)
    if name == "depth-fast":
        return optimize_depth(mig, allow_size_increase=False)
    if name == "strash":
        return strash_rebuild(mig)
    if name == "fraig":
        from .fraig import fraig

        return fraig(mig)
    raise ValueError(
        f"unknown flow step {step!r}; expected one of {VARIANTS} or "
        "'depth', 'depth-fast', 'strash', 'fraig'"
    )


def run_flow(
    mig: Mig,
    db: NpnDatabase | None,
    script: list[str],
    verbose: bool = False,
) -> tuple[Mig, list[FlowStepStats]]:
    """Apply *script* steps in order; returns the final MIG and per-step stats."""
    history: list[FlowStepStats] = []
    current = mig
    for step in script:
        start = time.perf_counter()
        nxt = _apply_step(current, db, step)
        stats = FlowStepStats(
            step=step,
            size_before=current.num_gates,
            depth_before=current.depth(),
            size_after=nxt.num_gates,
            depth_after=nxt.depth(),
            runtime=time.perf_counter() - start,
        )
        history.append(stats)
        if verbose:
            print(
                f"  {step:10} {stats.size_before}/{stats.depth_before} -> "
                f"{stats.size_after}/{stats.depth_after} ({stats.runtime:.2f}s)"
            )
        current = nxt
    return current, history


def optimize_until_convergence(
    mig: Mig,
    db: NpnDatabase,
    variant: str = "BF",
    max_passes: int = 10,
) -> tuple[Mig, int]:
    """Repeat one functional-hashing variant until the size stops improving.

    Returns the converged MIG and the number of productive passes.
    """
    current = mig
    passes = 0
    for _ in range(max_passes):
        nxt = functional_hashing(current, db, variant)
        if nxt.num_gates >= current.num_gates:
            break
        current = nxt
        passes += 1
    return current, passes

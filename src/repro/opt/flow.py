"""Scripted optimization flows with verification, rollback, and budgets.

The paper's closing remark: *"In all experiments, we have performed the
functional hashing algorithm only once.  Running it several times or
combining it with other optimization or reshaping algorithms will likely
lead to further improvements."*  This module provides exactly that
machinery — ABC-script-style pass sequencing over MIGs:

>>> from repro.opt.flow import run_flow
>>> best, history = run_flow(mig, db, ["depth", "BF", "TFD", "BF"])

Recognized steps: any functional-hashing variant acronym (``T``, ``TD``,
``TF``, ``TFD``, ``B``, ``BD``, ``BF``, ``BFD``), ``depth`` (algebraic
depth optimization), ``depth-fast`` (associativity only, size-neutral),
``strash`` (structural-hash rebuild), ``fraig`` (SAT sweeping, for
networks the solver can handle), and ``remap`` (map onto the cell
library and resynthesize from the cover — the mapped-then-reoptimized
round trip; see :mod:`repro.opt.remap`).

On top of the sequencing the flow is a *fault-tolerant runtime*
(docs/ROBUSTNESS.md): every step can run under a shared
:class:`~repro.runtime.budget.Budget`, its result can be functionally
verified against the pre-step network (``verify="sim"`` or ``"cec"``),
and failures are handled by a configurable ``on_error`` policy —
``"raise"`` propagates, ``"rollback"`` keeps the pre-step network and
continues, ``"skip"`` is an alias of rollback for errors that produced no
result at all.  Each step records its outcome in
:attr:`FlowStepStats.status`: ``ok``, ``rolled-back``, ``timeout``,
``failed``, or ``skipped``.

:func:`optimize_until_convergence` repeats one variant to a fixpoint —
the ablation benchmark ``bench_ablation_iterate.py`` quantifies the
paper's remark with it.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

from ..core.mig import Mig, signal_not
from ..database.npn_db import NpnDatabase
from ..rewriting.engine import VARIANTS, functional_hashing
from ..runtime.budget import Budget
from ..runtime.errors import BudgetExhausted, VerificationFailed
from ..runtime.faults import fault_active
from ..runtime.metrics import PassMetrics
from ..runtime.verify import verify_rewrite
from .depth_opt import optimize_depth
from .size_opt import strash_rebuild

__all__ = ["FlowStepStats", "run_flow", "optimize_until_convergence"]

_ON_ERROR_POLICIES = ("raise", "rollback", "skip")


@dataclass(frozen=True)
class FlowStepStats:
    """Bookkeeping for one executed flow step."""

    step: str
    size_before: int
    depth_before: int
    size_after: int
    depth_after: int
    runtime: float
    #: "ok", "rolled-back", "timeout", "failed", or "skipped"
    status: str = "ok"
    #: how the step was verified: "off", "exhaustive", "sampled", "cec"
    verified: str = "off"
    #: diagnostic for non-ok statuses (exception text, counterexample)
    error: str | None = None
    #: hot-path counters, populated for functional-hashing steps
    metrics: PassMetrics | None = None


def _apply_step(
    mig: Mig,
    db: NpnDatabase | None,
    step: str,
    budget: Budget | None,
    cut_limit: int | None = None,
    cut_size: int | None = None,
) -> tuple[Mig, PassMetrics | None]:
    name = step.strip()
    upper = name.upper()
    if upper in VARIANTS:
        if db is None:
            raise ValueError(f"step {step!r} needs an NPN database")
        metrics = PassMetrics(variant=upper)
        kwargs = {}
        if cut_limit is not None:
            kwargs["cut_limit"] = cut_limit
        if cut_size is not None:
            kwargs["cut_size"] = cut_size
        return functional_hashing(mig, db, upper, metrics=metrics, **kwargs), metrics
    if name == "depth":
        return optimize_depth(mig), None
    if name == "depth-fast":
        return optimize_depth(mig, allow_size_increase=False), None
    if name == "strash":
        return strash_rebuild(mig), None
    if name == "fraig":
        from .fraig import fraig

        return fraig(mig, budget=budget), None
    if name == "remap":
        if db is None:
            raise ValueError("step 'remap' needs an NPN database")
        from .remap import remap_resynth

        return remap_resynth(mig, db), None
    raise ValueError(
        f"unknown flow step {step!r}; expected one of {VARIANTS} or "
        "'depth', 'depth-fast', 'strash', 'fraig', 'remap'"
    )


def _validate_script(db: NpnDatabase | None, script: list[str]) -> None:
    """Reject unknown steps (and variant steps without a db) up front.

    Script typos are caller bugs, not runtime faults — they must raise
    regardless of the ``on_error`` policy.
    """
    for step in script:
        name = step.strip()
        if name.upper() in VARIANTS or name == "remap":
            if db is None:
                raise ValueError(f"step {step!r} needs an NPN database")
        elif name not in ("depth", "depth-fast", "strash", "fraig"):
            raise ValueError(
                f"unknown flow step {step!r}; expected one of {VARIANTS} or "
                "'depth', 'depth-fast', 'strash', 'fraig', 'remap'"
            )


def _miscompiled(mig: Mig) -> Mig:
    """Deliberately wrong copy of *mig* (first output inverted) — fault hook."""
    bad = mig.clone()
    bad._outputs[0] = signal_not(bad._outputs[0])
    bad.invalidate_arrays()
    return bad


def _structure_corrupted(mig: Mig) -> Mig:
    """Copy of *mig* with a broken structural invariant — fault hook.

    The last gate's fanin triple is reversed (unsorted), modeling a pass
    that mutates network internals without going through ``maj()``.
    Caught by :meth:`Mig.check`, not by functional verification.
    """
    bad = mig.clone()
    for node in range(len(bad._fanins) - 1, 0, -1):
        fanin = bad._fanins[node]
        if fanin is not None and fanin[0] != fanin[2]:
            bad._fanins[node] = tuple(reversed(fanin))
            break
    bad.invalidate_arrays()
    return bad


def _checked(mig: Mig, verify: str) -> None:
    """Run the structural validator when any verification is requested.

    A pass that corrupts the representation (dangling refs, broken
    ordering) may still *simulate* correctly by accident, so the
    structural invariants are checked before functional equivalence.
    """
    if verify != "off":
        mig.check()


def run_flow(
    mig: Mig,
    db: NpnDatabase | None,
    script: list[str],
    verbose: bool = False,
    budget: Budget | None = None,
    verify: str = "off",
    on_error: str = "raise",
    cut_limit: int | None = None,
    cut_size: int | None = None,
    on_step: Callable[[FlowStepStats], None] | None = None,
    sat_backend: str = "internal",
) -> tuple[Mig, list[FlowStepStats]]:
    """Apply *script* steps in order; returns the final MIG and per-step stats.

    *budget* bounds the whole flow: SAT-backed steps run under it, and
    once it expires the remaining steps are recorded as ``timeout``
    without executing, so the call returns partial results instead of
    hanging.  *verify* (``off``/``sim``/``cec``) first runs the
    structural validator (:meth:`Mig.check`) and then checks each step's
    result against its input; under ``on_error="rollback"`` or
    ``"skip"`` non-equivalent (or structurally broken) results are
    discarded, recording the step as ``rolled-back``.
    ``on_error="raise"`` propagates step exceptions and raises
    :class:`~repro.runtime.errors.VerificationFailed` on a detected
    miscompile.  *sat_backend* (``internal``/``auto``/``portfolio``)
    selects the solver lanes raced by ``verify="cec"`` miters; one
    portfolio is shared across all steps so its per-lane event counters
    accumulate into each step's metrics.  *cut_limit* overrides the rewriters' per-node cut cap
    for every functional-hashing step (the batch runtime's degradation
    ladder shrinks it on retries); *cut_size* overrides the cut width
    (5 or 6 needs a :class:`~repro.rewriting.dynamic_db.DynamicDatabase`
    of matching arity).  *on_step* is called with each step's
    :class:`FlowStepStats` as soon as it concludes — the progress seam
    the serving tier streams from; callback failures are swallowed so a
    broken observer can never fail the optimization it observes.
    """
    if on_error not in _ON_ERROR_POLICIES:
        raise ValueError(
            f"unknown on_error policy {on_error!r}; expected one of {_ON_ERROR_POLICIES}"
        )
    _validate_script(db, script)
    if verify == "cec" and sat_backend != "internal":
        from ..sat.portfolio import resolve_backend

        # Resolved once so discovery runs once and event counters span
        # the whole flow; None when auto finds no binary.
        cec_backend = resolve_backend(sat_backend, budget=budget) or "internal"
    else:
        cec_backend = "internal"

    history: list[FlowStepStats] = []
    current = mig

    def record(
        step: str,
        nxt: Mig,
        start: float,
        status: str,
        verified: str = "off",
        error: str | None = None,
        metrics: PassMetrics | None = None,
    ) -> None:
        stats = FlowStepStats(
            step=step,
            size_before=current.num_gates,
            depth_before=current.depth(),
            size_after=nxt.num_gates,
            depth_after=nxt.depth(),
            runtime=time.perf_counter() - start,
            status=status,
            verified=verified,
            error=error,
            metrics=metrics,
        )
        history.append(stats)
        if on_step is not None:
            try:
                on_step(stats)
            except Exception:  # noqa: BLE001 - observer must not break the flow
                pass
        if verbose:
            flag = "" if status == "ok" else f" [{status}]"
            print(
                f"  {step:10} {stats.size_before}/{stats.depth_before} -> "
                f"{stats.size_after}/{stats.depth_after} ({stats.runtime:.2f}s){flag}"
            )

    for step in script:
        start = time.perf_counter()
        if budget is not None and budget.expired():
            # Budget spent before this step: record it unexecuted.
            record(step, current, start, "timeout", error="budget exhausted")
            continue
        try:
            nxt, metrics = _apply_step(
                current, db, step, budget, cut_limit, cut_size
            )
        except BudgetExhausted as exc:
            record(step, current, start, "timeout", error=str(exc))
            continue
        except Exception as exc:  # noqa: BLE001 - policy boundary
            if on_error == "raise":
                raise
            record(step, current, start, "failed", error=str(exc))
            continue

        if fault_active("flow.wrong-rewrite"):
            nxt = _miscompiled(nxt)
        if fault_active("flow.corrupt-structure"):
            nxt = _structure_corrupted(nxt)

        try:
            _checked(nxt, verify)
        except ValueError as exc:
            if on_error == "raise":
                raise VerificationFailed(step=step, method="structural") from exc
            record(
                step, current, start, "rolled-back", "structural",
                f"structural invariant violated: {exc}", metrics,
            )
            continue

        report = verify_rewrite(
            current, nxt, mode=verify, budget=budget, sat_backend=cec_backend
        )
        if metrics is not None:
            # Kernel counters: verification simulation on both networks
            # (the rewriters already folded in their construction counters).
            metrics.record_network(current)
            metrics.record_network(nxt)
            metrics.record_backend_events(report.backend_events)
        if report.refuted:
            if on_error == "raise":
                raise VerificationFailed(
                    step=step,
                    method=report.method,
                    counterexample=report.counterexample,
                )
            error = f"non-equivalent result ({report.method})"
            if report.counterexample is not None:
                error += f"; counterexample {report.counterexample}"
            record(
                step, current, start, "rolled-back", report.method, error, metrics
            )
            continue

        record(step, nxt, start, "ok", report.method, metrics=metrics)
        current = nxt
    return current, history


def optimize_until_convergence(
    mig: Mig,
    db: NpnDatabase,
    variant: str = "BF",
    max_passes: int = 10,
    budget: Budget | None = None,
    verify: str = "off",
    on_error: str = "raise",
    metrics: PassMetrics | None = None,
    cut_limit: int | None = None,
    cut_size: int | None = None,
    sat_backend: str = "internal",
) -> tuple[Mig, int]:
    """Repeat one functional-hashing variant until the size stops improving.

    Returns the converged MIG and the number of productive passes.

    Runs under the same fault-tolerant runtime as :func:`run_flow`: a
    shared *budget* stops the iteration cleanly between passes (partial
    progress is kept, never discarded), *verify* checks every pass
    against its input, and *on_error* decides whether a failing or
    miscompiled pass raises (``"raise"``) or is rolled back — the
    last-known-good network is returned (``"rollback"``/``"skip"``).
    Pass a :class:`PassMetrics` to accumulate hot-path counters across
    all executed passes.
    """
    if on_error not in _ON_ERROR_POLICIES:
        raise ValueError(
            f"unknown on_error policy {on_error!r}; expected one of {_ON_ERROR_POLICIES}"
        )
    if verify == "cec" and sat_backend != "internal":
        from ..sat.portfolio import resolve_backend

        cec_backend = resolve_backend(sat_backend, budget=budget) or "internal"
    else:
        cec_backend = "internal"
    current = mig
    passes = 0
    for _ in range(max_passes):
        if budget is not None and budget.expired():
            break
        pass_metrics = PassMetrics(variant=variant.upper())
        kwargs = {}
        if cut_limit is not None:
            kwargs["cut_limit"] = cut_limit
        if cut_size is not None:
            kwargs["cut_size"] = cut_size
        try:
            nxt = functional_hashing(
                current, db, variant, metrics=pass_metrics, **kwargs
            )
        except BudgetExhausted:
            break
        except Exception:  # noqa: BLE001 - policy boundary
            if on_error == "raise":
                raise
            break
        if metrics is not None:
            metrics.merge(pass_metrics)
            metrics.variant = variant.upper()

        if fault_active("flow.wrong-rewrite"):
            nxt = _miscompiled(nxt)
        if fault_active("flow.corrupt-structure"):
            nxt = _structure_corrupted(nxt)

        try:
            _checked(nxt, verify)
        except ValueError as exc:
            if on_error == "raise":
                raise VerificationFailed(step=variant, method="structural") from exc
            break  # roll back to the last structurally valid network

        report = verify_rewrite(
            current, nxt, mode=verify, budget=budget, sat_backend=cec_backend
        )
        if metrics is not None:
            metrics.record_network(current)
            metrics.record_network(nxt)
            metrics.record_backend_events(report.backend_events)
        if report.refuted:
            if on_error == "raise":
                raise VerificationFailed(
                    step=variant,
                    method=report.method,
                    counterexample=report.counterexample,
                )
            break  # roll back to the last verified network and stop
        if nxt.num_gates >= current.num_gates:
            break
        current = nxt
        passes += 1
    return current, passes

"""Size-oriented MIG cleanup passes.

Complements the functional-hashing rewriter with network-level hygiene:

* :func:`strash_rebuild` — re-runs structural hashing over the whole
  network, folding duplicate gates and re-applying the unit majority
  rules; removes dead nodes.
* :func:`functional_reduce` — merges functionally equivalent (or
  antivalent) gates, detected by exhaustive simulation.  Exact and safe
  for networks of up to 14 primary inputs; the global-simulation table is
  the proof of equivalence.  (Large networks rely on structural hashing
  and rewriting; SAT-based fraiging over cone miters is provided by
  :mod:`repro.sat.cec` for spot checks.)
"""

from __future__ import annotations

from ..core.mig import Mig, signal_not
from ..core.truth_table import tt_mask, tt_maj, tt_var

__all__ = ["strash_rebuild", "functional_reduce"]

_FUNC_REDUCE_LIMIT = 14


def strash_rebuild(mig: Mig) -> Mig:
    """Rebuild with structural hashing; folds duplicates and dead logic."""
    return mig.cleanup()


def functional_reduce(mig: Mig) -> Mig:
    """Merge gates that compute equal or complementary global functions.

    Requires ``num_pis <= 14`` (exhaustive simulation).  The first gate in
    topological order becomes the representative of its function class.
    """
    if mig.num_pis > _FUNC_REDUCE_LIMIT:
        raise ValueError(
            f"functional_reduce requires <= {_FUNC_REDUCE_LIMIT} inputs; "
            "use structural hashing / rewriting for larger networks"
        )
    n = mig.num_pis
    mask = tt_mask(n)
    new = Mig.like(mig)
    # function -> representative signal in the new network
    classes: dict[int, int] = {0: 0}
    values: dict[int, int] = {0: 0}
    mapping: dict[int, int] = {0: 0}
    for i in range(n):
        var = tt_var(n, i)
        classes[var] = 2 * (1 + i)
        values[1 + i] = var
        mapping[1 + i] = 2 * (1 + i)

    for node in mig.gates():
        a, b, c = mig.fanins(node)
        tt = tt_maj(
            values[a >> 1] ^ (mask if a & 1 else 0),
            values[b >> 1] ^ (mask if b & 1 else 0),
            values[c >> 1] ^ (mask if c & 1 else 0),
        )
        values[node] = tt
        existing = classes.get(tt)
        if existing is not None:
            mapping[node] = existing
            continue
        anti = classes.get(tt ^ mask)
        if anti is not None:
            mapping[node] = signal_not(anti)
            continue
        signal = new.maj(
            mapping[a >> 1] ^ (a & 1),
            mapping[b >> 1] ^ (b & 1),
            mapping[c >> 1] ^ (c & 1),
        )
        mapping[node] = signal
        classes[tt] = signal
    for s, name in zip(mig.outputs, mig.output_names):
        new.add_po(mapping[s >> 1] ^ (s & 1), name)
    return new.cleanup()

"""MIG algebraic optimization (the depth/size flows of refs [3], [4])."""

from .algebraic import LevelBuilder, depth_aware_maj
from .depth_opt import optimize_depth
from .size_opt import functional_reduce, strash_rebuild
from .flow import FlowStepStats, optimize_until_convergence, run_flow
from .fraig import fraig

__all__ = [
    "LevelBuilder",
    "depth_aware_maj",
    "optimize_depth",
    "functional_reduce",
    "strash_rebuild",
    "run_flow",
    "optimize_until_convergence",
    "FlowStepStats",
    "fraig",
]

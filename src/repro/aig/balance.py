"""AIG balancing by algebraic tree-height reduction (refs [6], [7]).

DAG-aware AIG rewriting interleaves rewriting with *balancing*: maximal
multi-input AND trees are collected and rebuilt as minimum-height trees,
combining the shallowest operands first (a Huffman-style greedy, which is
optimal for tree height).  The paper cites this as the mechanism by which
the AIG flow controls depth; we provide it both for the AIG substrate and
for depth comparisons against MIG optimization.
"""

from __future__ import annotations

import heapq
import sys

from .aig import Aig

__all__ = ["balance"]


def balance(aig: Aig) -> Aig:
    """Return a depth-balanced, function-equivalent copy of *aig*."""
    fanout = [0] * (aig.num_pis + 1 + aig.num_gates)
    for node in aig.gates():
        for s in aig.fanins(node):
            fanout[s >> 1] += 1
    for s in aig.outputs:
        fanout[s >> 1] += 1

    new = Aig.like(aig)
    mapping: dict[int, int] = {0: 0}
    level: dict[int, int] = {0: 0}
    for i in range(1, aig.num_pis + 1):
        mapping[i] = i << 1
        level[i] = 0

    def operands_of_and_tree(node: int) -> list[int]:
        """Operand signals of the maximal single-fanout AND tree at *node*."""
        operands: list[int] = []
        stack = list(aig.fanins(node))
        while stack:
            s = stack.pop()
            child = s >> 1
            if not (s & 1) and aig.is_gate(child) and fanout[child] == 1:
                stack.extend(aig.fanins(child))
            else:
                operands.append(s)
        return operands

    def build(node: int) -> None:
        """Populate ``mapping[node]`` and ``level[node]``."""
        if node in mapping:
            return
        items: list[tuple[int, int]] = []
        for s in operands_of_and_tree(node):
            child = s >> 1
            if child not in mapping:
                build(child)
            items.append((level[child], mapping[child] ^ (s & 1)))
        heapq.heapify(items)
        while len(items) > 1:
            l1, s1 = heapq.heappop(items)
            l2, s2 = heapq.heappop(items)
            heapq.heappush(items, (max(l1, l2) + 1, new.and_(s1, s2)))
        lvl, signal = items[0]
        mapping[node] = signal
        level[node] = lvl

    old_limit = sys.getrecursionlimit()
    sys.setrecursionlimit(max(old_limit, 4 * len(fanout) + 1000))
    try:
        for s in aig.outputs:
            if aig.is_gate(s >> 1):
                build(s >> 1)
        for s, name in zip(aig.outputs, aig.output_names):
            new.add_po(mapping[s >> 1] ^ (s & 1), name)
    finally:
        sys.setrecursionlimit(old_limit)
    return new.cleanup()

"""k-feasible cut enumeration and cut functions for AIGs.

The AND-gate analogue of :mod:`repro.core.cuts`, needed by the DAG-aware
AIG rewriting baseline (ref. [6] of the paper).
"""

from __future__ import annotations

from ..core.truth_table import tt_mask, tt_var
from .aig import Aig

__all__ = ["enumerate_aig_cuts", "aig_cut_function", "aig_cut_cone", "aig_fanout_counts"]


def _signature(leaves: tuple[int, ...]) -> int:
    sig = 0
    for leaf in leaves:
        sig |= 1 << (leaf & 63)
    return sig


def enumerate_aig_cuts(
    aig: Aig, k: int = 4, cut_limit: int = 12
) -> list[list[tuple[int, ...]]]:
    """All k-feasible cuts per node (plus each gate's trivial cut)."""
    if k < 1:
        raise ValueError("cut size k must be at least 1")
    num_nodes = aig.num_pis + 1 + aig.num_gates
    work: list[list[tuple[tuple[int, ...], int]]] = [[] for _ in range(num_nodes)]
    work[0] = [((), 0)]
    for node in range(1, aig.num_pis + 1):
        work[node] = [((node,), _signature((node,)))]
    for node in aig.gates():
        a, b = aig.fanins(node)
        merged: dict[tuple[int, ...], int] = {}
        for leaves1, sig1 in work[a >> 1]:
            for leaves2, sig2 in work[b >> 1]:
                sig = sig1 | sig2
                if sig.bit_count() > k:
                    continue
                union = set(leaves1)
                union.update(leaves2)
                if len(union) > k:
                    continue
                leaves = tuple(sorted(union))
                merged[leaves] = _signature(leaves)
        items = sorted(merged.items(), key=lambda item: len(item[0]))
        # Domination pruning.
        kept: list[tuple[tuple[int, ...], int]] = []
        for leaves, sig in items:
            leaf_set = set(leaves)
            if not any(
                len(other) < len(leaves) and leaf_set.issuperset(other)
                for other, _ in kept
            ):
                kept.append((leaves, sig))
        if len(kept) > cut_limit:
            kept = kept[:cut_limit]
        kept.append(((node,), _signature((node,))))
        work[node] = kept
    return [[leaves for leaves, _ in cuts] for cuts in work]


def aig_cut_function(aig: Aig, root: int, leaves: tuple[int, ...]) -> int:
    """Local function of *root* over *leaves* (leaf j becomes x_j)."""
    k = len(leaves)
    mask = tt_mask(k)
    values: dict[int, int] = {0: 0}
    for j, leaf in enumerate(leaves):
        values[leaf] = tt_var(k, j)

    def eval_node(node: int) -> int:
        cached = values.get(node)
        if cached is not None:
            return cached
        if not aig.is_gate(node):
            raise ValueError(f"terminal node {node} is not a cut leaf")
        a, b = aig.fanins(node)
        va = eval_node(a >> 1) ^ (mask if a & 1 else 0)
        vb = eval_node(b >> 1) ^ (mask if b & 1 else 0)
        values[node] = va & vb
        return values[node]

    return eval_node(root)


def aig_cut_cone(aig: Aig, root: int, leaves: tuple[int, ...]) -> list[int]:
    """Internal nodes of the cut (including the root), topological order."""
    leaf_set = set(leaves)
    visited: set[int] = set()
    order: list[int] = []

    def visit(node: int) -> None:
        if node in leaf_set or node == 0 or node in visited:
            return
        if not aig.is_gate(node):
            raise ValueError(f"terminal node {node} outside the cut leaves")
        visited.add(node)
        for s in aig.fanins(node):
            visit(s >> 1)
        order.append(node)

    visit(root)
    return order


def aig_fanout_counts(aig: Aig) -> list[int]:
    """Per-node reference count (gate fanins plus outputs)."""
    counts = [0] * (aig.num_pis + 1 + aig.num_gates)
    for node in aig.gates():
        for s in aig.fanins(node):
            counts[s >> 1] += 1
    for s in aig.outputs:
        counts[s >> 1] += 1
    return counts

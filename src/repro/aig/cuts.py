"""AIG cut enumeration — compatibility shims over the generic kernel code.

The AND-gate cut enumerator that used to live here was a duplicate of
:mod:`repro.core.cuts`; since the kernel refactor that enumerator is
arity-generic and these wrappers only preserve the historical names and
defaults (``cut_limit=12`` for the AIG rewriting baseline).
"""

from __future__ import annotations

from ..core.cuts import cut_cone, enumerate_cuts
from ..core.simengine import cone_function
from .aig import Aig

__all__ = ["enumerate_aig_cuts", "aig_cut_function", "aig_cut_cone", "aig_fanout_counts"]


def enumerate_aig_cuts(
    aig: Aig, k: int = 4, cut_limit: int = 12
) -> list[list[tuple[int, ...]]]:
    """All k-feasible cuts per node (plus each gate's trivial cut)."""
    return enumerate_cuts(aig, k=k, cut_limit=cut_limit)


def aig_cut_function(aig: Aig, root: int, leaves: tuple[int, ...]) -> int:
    """Local function of *root* over *leaves* (leaf j becomes x_j)."""
    return cone_function(aig, root, leaves)


def aig_cut_cone(aig: Aig, root: int, leaves: tuple[int, ...]) -> list[int]:
    """Internal nodes of the cut (including the root), topological order."""
    return cut_cone(aig, root, leaves)


def aig_fanout_counts(aig: Aig) -> list[int]:
    """Per-node reference count (gate fanins plus outputs)."""
    return aig.fanout_counts()

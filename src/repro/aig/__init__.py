"""And-Inverter Graph substrate: data structure, conversion, balancing."""

from .aig import Aig
from .convert import aig_to_mig, mig_to_aig
from .balance import balance
from .cuts import aig_cut_function, enumerate_aig_cuts
from .rewrite import aig_class_cost, build_function_into_aig, rewrite_aig

__all__ = [
    "Aig",
    "aig_to_mig",
    "mig_to_aig",
    "balance",
    "enumerate_aig_cuts",
    "aig_cut_function",
    "rewrite_aig",
    "aig_class_cost",
    "build_function_into_aig",
]

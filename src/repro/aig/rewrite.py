"""DAG-aware AIG rewriting — the ref. [6] baseline.

The paper positions MIG functional hashing against the classic AIG
rewriting of Mishchenko, Chatterjee and Brayton ("DAG-aware AIG rewriting
— a fresh look at combinational logic synthesis", DAC 2006): enumerate
4-input cuts, compare each cut's implementation against a precomputed
smaller structure, and replace greedily.

This implementation mirrors our MIG rewriter's top-down scheme over AND
gates.  Replacement structures are synthesized on demand per NPN class —
a memoized Shannon/xor-decomposition AIG factory — which plays the role
of [6]'s precomputed class library.  Combined with
:func:`repro.aig.balance.balance` this gives the size+depth AIG flow the
paper's related-work section describes, enabling head-to-head comparisons
with MIG functional hashing (``benchmarks/bench_aig_baseline.py``).
"""

from __future__ import annotations

import sys
from functools import lru_cache

from ..core.npn import apply_transform, npn_canonize
from ..core.truth_table import (
    tt_cofactor0,
    tt_cofactor1,
    tt_extend,
    tt_mask,
    tt_support,
    tt_var,
)
from .aig import Aig
from .cuts import aig_cut_cone, aig_cut_function, aig_fanout_counts, enumerate_aig_cuts

__all__ = ["rewrite_aig", "aig_class_cost", "build_function_into_aig"]


@lru_cache(maxsize=1 << 16)
def _class_structure(rep: int, num_vars: int) -> tuple[tuple[int, int, int], ...]:
    """AND-gate structure for an NPN representative.

    Returns gate rows ``(lhs_node, rhs0_signal, rhs1_signal)`` over node
    numbering 0=const, 1..n = inputs; the last row's node drives the
    output, whose polarity is in the final sentinel row ``(-1, out, 0)``.
    """
    scratch = Aig(num_vars)
    signal = _build_recursive(scratch, rep, num_vars)
    scratch.add_po(signal)
    clean = scratch.cleanup()
    rows = []
    for node in clean.gates():
        a, b = clean.fanins(node)
        rows.append((node, a, b))
    rows.append((-1, clean.outputs[0], 0))
    return tuple(rows)


def _build_recursive(aig: Aig, tt: int, num_vars: int) -> int:
    """Heuristic AIG synthesis: memoized Shannon with xor detection."""
    mask = tt_mask(num_vars)
    memo: dict[int, int] = {0: 0, mask: 1}
    for i in range(num_vars):
        var = tt_var(num_vars, i)
        memo[var] = (1 + i) << 1
        memo[var ^ mask] = ((1 + i) << 1) ^ 1

    def build(f: int) -> int:
        cached = memo.get(f)
        if cached is not None:
            return cached
        comp = memo.get(f ^ mask)
        if comp is not None:
            return comp ^ 1
        support = tt_support(f, num_vars)
        best = None
        for i in support:
            f0 = tt_cofactor0(f, i, num_vars)
            f1 = tt_cofactor1(f, i, num_vars)
            score = -1 if f1 == f0 ^ mask else len(tt_support(f0, num_vars)) + len(
                tt_support(f1, num_vars)
            )
            if best is None or score < best[0]:
                best = (score, i, f0, f1)
        assert best is not None
        _, i, f0, f1 = best
        x = (1 + i) << 1
        if f1 == f0 ^ mask:
            g = build(f0)
            result = aig.xor(x, g)
        else:
            result = aig.mux(x, build(f1), build(f0))
        memo[f] = result
        return result

    return build(tt)


def aig_class_cost(tt: int, num_vars: int = 4) -> int:
    """AND-gate count of the synthesized structure for *tt*'s NPN class."""
    rep, _ = npn_canonize(tt, num_vars)
    return len(_class_structure(rep, num_vars)) - 1


def build_function_into_aig(
    aig: Aig, tt: int, leaf_signals: list[int], num_vars: int = 4
) -> int:
    """Instantiate the class structure of *tt* over *leaf_signals*."""
    if len(leaf_signals) != num_vars:
        raise ValueError(f"expected {num_vars} leaves")
    rep, t = npn_canonize(tt, num_vars)
    assert apply_transform(rep, t, num_vars) == tt
    structure = _class_structure(rep, num_vars)
    signals = [0] * (1 + num_vars)
    for j in range(num_vars):
        s = leaf_signals[t.perm[j]]
        if (t.flips >> j) & 1:
            s ^= 1
        signals[1 + j] = s
    node_map: dict[int, int] = {0: 0}
    for j in range(num_vars):
        node_map[1 + j] = signals[1 + j]
    out_signal = None
    for lhs, rhs0, rhs1 in structure:
        if lhs == -1:
            out_signal = node_map[rhs0 >> 1] ^ (rhs0 & 1)
            break
        a = node_map[rhs0 >> 1] ^ (rhs0 & 1)
        b = node_map[rhs1 >> 1] ^ (rhs1 & 1)
        node_map[lhs] = aig.and_(a, b)
    assert out_signal is not None
    if t.output_flip:
        out_signal ^= 1
    return out_signal


def rewrite_aig(
    aig: Aig,
    cut_size: int = 4,
    cut_limit: int = 10,
    fanout_free: bool = True,
) -> Aig:
    """One top-down cut-rewriting pass over an AIG; function-preserving."""
    cuts = enumerate_aig_cuts(aig, k=cut_size, cut_limit=cut_limit)
    fanout = aig_fanout_counts(aig)
    new = Aig.like(aig)
    memo: dict[int, int] = {0: 0}
    for i in range(1, aig.num_pis + 1):
        memo[i] = i << 1

    limit = sys.getrecursionlimit()
    sys.setrecursionlimit(max(limit, 4 * (aig.num_pis + aig.num_gates) + 1000))

    def admissible(node: int, leaves: tuple[int, ...]) -> list[int] | None:
        try:
            internal = aig_cut_cone(aig, node, leaves)
        except ValueError:
            return None
        if fanout_free and any(
            fanout[n] != 1 for n in internal if n != node
        ):
            return None
        return internal

    def best_cut(node: int) -> tuple[tuple[int, ...], int] | None:
        best = None
        for leaves in cuts[node]:
            if leaves == (node,) or node in leaves:
                continue
            internal = admissible(node, leaves)
            if internal is None:
                continue
            tt = aig_cut_function(aig, node, leaves)
            tt4 = tt_extend(tt, len(leaves), cut_size)
            gain = len(internal) - aig_class_cost(tt4, cut_size)
            if gain <= 0:
                continue
            if best is None or gain > best[0]:
                best = (gain, leaves, tt4)
        if best is None:
            return None
        return best[1], best[2]

    def opt(node: int) -> int:
        cached = memo.get(node)
        if cached is not None:
            return cached
        choice = best_cut(node)
        if choice is not None:
            leaves, tt4 = choice
            leaf_signals = [opt(leaf) for leaf in leaves]
            leaf_signals += [0] * (cut_size - len(leaves))
            signal = build_function_into_aig(new, tt4, leaf_signals, cut_size)
        else:
            a, b = aig.fanins(node)
            signal = new.and_(
                opt(a >> 1) ^ (a & 1), opt(b >> 1) ^ (b & 1)
            )
        memo[node] = signal
        return signal

    try:
        for s, name in zip(aig.outputs, aig.output_names):
            new.add_po(opt(s >> 1) ^ (s & 1), name)
    finally:
        sys.setrecursionlimit(limit)
    return new.cleanup()

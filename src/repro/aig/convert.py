"""Conversion between MIGs and AIGs.

``mig_to_aig`` expands each majority gate into the 4-AND form
``<abc> = (a&b) | c&(a|b)``; ``aig_to_mig`` embeds each AND as the
majority ``<0ab>`` (Sec. II-B of the paper: conjunction is majority with
a constant-0 operand).  Both directions preserve I/O names and are
function-preserving (checked by the test-suite round-trip properties).
"""

from __future__ import annotations

from ..core.mig import CONST0, Mig
from .aig import Aig

__all__ = ["mig_to_aig", "aig_to_mig"]


def mig_to_aig(mig: Mig) -> Aig:
    """Convert an MIG into an AIG."""
    aig = Aig(name=mig.name)
    for name in mig.pi_names:
        aig.add_pi(name)
    mapping: dict[int, int] = {0: 0}
    for i in range(1, mig.num_pis + 1):
        mapping[i] = i << 1
    for node in mig.gates():
        fa, fb, fc = mig.fanins(node)
        a = mapping[fa >> 1] ^ (fa & 1)
        b = mapping[fb >> 1] ^ (fb & 1)
        c = mapping[fc >> 1] ^ (fc & 1)
        both = aig.and_(a, b)
        either = aig.or_(a, b)
        mapping[node] = aig.or_(both, aig.and_(c, either))
    for s, name in zip(mig.outputs, mig.output_names):
        aig.add_po(mapping[s >> 1] ^ (s & 1), name)
    return aig


def aig_to_mig(aig: Aig) -> Mig:
    """Convert an AIG into an MIG."""
    mig = Mig(name=aig.name)
    for name in aig.pi_names:
        mig.add_pi(name)
    mapping: dict[int, int] = {0: 0}
    for i in range(1, aig.num_pis + 1):
        mapping[i] = i << 1
    for node in aig.gates():
        fa, fb = aig.fanins(node)
        a = mapping[fa >> 1] ^ (fa & 1)
        b = mapping[fb >> 1] ^ (fb & 1)
        mapping[node] = mig.maj(CONST0, a, b)
    for s, name in zip(aig.outputs, aig.output_names):
        mig.add_po(mapping[s >> 1] ^ (s & 1), name)
    return mig

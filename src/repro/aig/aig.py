"""And-Inverter Graphs — the comparison representation (Sec. I, refs [2], [6]).

The paper positions MIGs against AIGs, the dominant homogeneous logic
representation.  Since the kernel refactor this is a thin 2-ary facade
over the same substrate as :class:`repro.core.mig.Mig` —
:class:`repro.core.kernel.Network` for storage/traversals/validation and
:mod:`repro.core.simengine` for bit-parallel simulation — so the AIG
inherits everything the MIG has (``check``, ``fanout_counts``,
``cleanup``, ``clone``, ``simulate_patterns``, ``cut_function``, array
kernels) and contributes only the AND-gate semantics: the same signal
conventions (signal = ``2*node + inv``), structural hashing and the unit
rules ``a&a = a``, ``a&a' = 0``, ``a&1 = a``, ``a&0 = 0``.
"""

from __future__ import annotations

from ..core.kernel import Network
from ..core.simengine import SimulationMixin

__all__ = ["Aig"]


class Aig(SimulationMixin, Network):
    """An And-Inverter Graph with structural hashing."""

    ARITY = 2
    DEFAULT_NAME = "aig"

    # -- gate semantics ------------------------------------------------

    def and_(self, a: int, b: int) -> int:
        """Create (or reuse) the AND gate of two signals."""
        for s in (a, b):
            if (s >> 1) >= len(self._fanins):
                raise ValueError(f"signal {s} refers to an unknown node")
        if a == b:
            self.unit_rules += 1
            return a
        if a == b ^ 1:
            self.unit_rules += 1
            return 0
        if a == 0 or b == 0:
            self.unit_rules += 1
            return 0
        if a == 1:
            self.unit_rules += 1
            return b
        if b == 1:
            self.unit_rules += 1
            return a
        key = (a, b) if a < b else (b, a)
        node = self._strash.get(key)
        if node is None:
            node = len(self._fanins)
            self._fanins.append(key)
            self._strash[key] = node
        else:
            self.strash_hits += 1
        return node << 1

    def _make_gate(self, fanins: tuple[int, ...]) -> int:
        return self.and_(*fanins)

    def or_(self, a: int, b: int) -> int:
        """Disjunction via De Morgan."""
        return self.and_(a ^ 1, b ^ 1) ^ 1

    def xor(self, a: int, b: int) -> int:
        """Exclusive-or (two AND levels)."""
        return self.and_(self.and_(a, b ^ 1) ^ 1, self.and_(a ^ 1, b) ^ 1) ^ 1

    def mux(self, sel: int, when_true: int, when_false: int) -> int:
        """2:1 multiplexer."""
        return self.or_(self.and_(sel, when_true), self.and_(sel ^ 1, when_false))

    # -- structural validation (AIG-specific invariants) ---------------

    def _check_gate_fanin(self, node: int, fanin: tuple[int, ...]) -> None:
        """The invariants :meth:`and_` guarantees beyond the kernel's."""
        a, b = fanin
        if a >= b:
            raise ValueError(f"gate node {node} fanin pair {fanin} is unsorted")
        if a >> 1 == b >> 1:
            raise ValueError(
                f"gate node {node} fanin pair {fanin} repeats a node "
                "(unit rule a&a/a&a' not applied)"
            )
        if a >> 1 == 0:
            raise ValueError(
                f"gate node {node} fanin pair {fanin} references a constant "
                "(unit rule a&0/a&1 not applied)"
            )

"""And-Inverter Graphs — the comparison representation (Sec. I, refs [2], [6]).

The paper positions MIGs against AIGs, the dominant homogeneous logic
representation.  This substrate provides an AIG with the same signal
conventions as :class:`repro.core.mig.Mig` (signal = ``2*node + inv``),
structural hashing and the unit rules ``a&a = a``, ``a&a' = 0``,
``a&1 = a``, ``a&0 = 0``.
"""

from __future__ import annotations

from typing import Iterator

from ..core.truth_table import tt_mask, tt_var

__all__ = ["Aig"]


class Aig:
    """An And-Inverter Graph with structural hashing."""

    def __init__(self, num_pis: int = 0, name: str = "aig") -> None:
        self.name = name
        self._fanins: list[tuple[int, int] | None] = [None]
        self._pi_names: list[str] = []
        self._outputs: list[int] = []
        self._output_names: list[str] = []
        self._strash: dict[tuple[int, int], int] = {}
        for _ in range(num_pis):
            self.add_pi()

    @classmethod
    def like(cls, other: "Aig") -> "Aig":
        """Empty AIG with the same primary inputs as *other*."""
        new = cls(name=other.name)
        for name in other._pi_names:
            new.add_pi(name)
        return new

    # -- construction -------------------------------------------------

    def add_pi(self, name: str | None = None) -> int:
        """Add a primary input; returns its signal."""
        if self.num_gates:
            raise ValueError("all primary inputs must precede the first gate")
        node = len(self._fanins)
        self._fanins.append(None)
        self._pi_names.append(name if name is not None else f"x{node - 1}")
        return node << 1

    def pi_signals(self) -> list[int]:
        """Signals of all primary inputs."""
        return [(1 + i) << 1 for i in range(self.num_pis)]

    def and_(self, a: int, b: int) -> int:
        """Create (or reuse) the AND gate of two signals."""
        for s in (a, b):
            if (s >> 1) >= len(self._fanins):
                raise ValueError(f"signal {s} refers to an unknown node")
        if a == b:
            return a
        if a == b ^ 1:
            return 0
        if a == 0 or b == 0:
            return 0
        if a == 1:
            return b
        if b == 1:
            return a
        key = (a, b) if a < b else (b, a)
        node = self._strash.get(key)
        if node is None:
            node = len(self._fanins)
            self._fanins.append(key)
            self._strash[key] = node
        return node << 1

    def or_(self, a: int, b: int) -> int:
        """Disjunction via De Morgan."""
        return self.and_(a ^ 1, b ^ 1) ^ 1

    def xor(self, a: int, b: int) -> int:
        """Exclusive-or (two AND levels)."""
        return self.and_(self.and_(a, b ^ 1) ^ 1, self.and_(a ^ 1, b) ^ 1) ^ 1

    def mux(self, sel: int, when_true: int, when_false: int) -> int:
        """2:1 multiplexer."""
        return self.or_(self.and_(sel, when_true), self.and_(sel ^ 1, when_false))

    def add_po(self, signal: int, name: str | None = None) -> None:
        """Register a primary output."""
        if (signal >> 1) >= len(self._fanins):
            raise ValueError(f"signal {signal} refers to an unknown node")
        self._outputs.append(signal)
        self._output_names.append(name if name is not None else f"y{len(self._outputs) - 1}")

    # -- structure ---------------------------------------------------------

    @property
    def num_pis(self) -> int:
        """Number of primary inputs."""
        return len(self._pi_names)

    @property
    def num_pos(self) -> int:
        """Number of primary outputs."""
        return len(self._outputs)

    @property
    def num_gates(self) -> int:
        """Number of AND gates."""
        return len(self._fanins) - 1 - self.num_pis

    @property
    def outputs(self) -> tuple[int, ...]:
        """Output signals."""
        return tuple(self._outputs)

    @property
    def output_names(self) -> tuple[str, ...]:
        """Output names."""
        return tuple(self._output_names)

    @property
    def pi_names(self) -> tuple[str, ...]:
        """Input names."""
        return tuple(self._pi_names)

    def is_pi(self, node: int) -> bool:
        """True for input nodes."""
        return 1 <= node <= self.num_pis

    def is_gate(self, node: int) -> bool:
        """True for AND nodes."""
        return self.num_pis < node < len(self._fanins)

    def fanins(self, node: int) -> tuple[int, int]:
        """Fanins of an AND node."""
        fanin = self._fanins[node]
        if fanin is None:
            raise ValueError(f"node {node} is a terminal")
        return fanin

    def gates(self) -> Iterator[int]:
        """AND nodes in topological order."""
        return iter(range(self.num_pis + 1, len(self._fanins)))

    def levels(self) -> list[int]:
        """Per-node level (terminals at 0)."""
        level = [0] * len(self._fanins)
        for node in self.gates():
            a, b = self.fanins(node)
            level[node] = 1 + max(level[a >> 1], level[b >> 1])
        return level

    def depth(self) -> int:
        """Longest path in AND gates."""
        if not self._outputs:
            return 0
        level = self.levels()
        return max(level[s >> 1] for s in self._outputs)

    # -- evaluation ------------------------------------------------------------

    def simulate(self) -> list[int]:
        """Exhaustive simulation (up to 16 inputs)."""
        if self.num_pis > 16:
            raise ValueError("exhaustive simulation limited to 16 inputs")
        n = self.num_pis
        mask = tt_mask(n)
        values = [0] * len(self._fanins)
        for i in range(n):
            values[1 + i] = tt_var(n, i)
        for node in self.gates():
            a, b = self.fanins(node)
            va = values[a >> 1] ^ (mask if a & 1 else 0)
            vb = values[b >> 1] ^ (mask if b & 1 else 0)
            values[node] = va & vb
        return [values[s >> 1] ^ (mask if s & 1 else 0) for s in self._outputs]

    def cleanup(self) -> "Aig":
        """Copy with dead gates removed."""
        new = Aig.like(self)
        mapping: dict[int, int] = {0: 0}
        for i in range(1, self.num_pis + 1):
            mapping[i] = i << 1
        reachable: set[int] = set()
        stack = [s >> 1 for s in self._outputs]
        while stack:
            node = stack.pop()
            if node in reachable or not self.is_gate(node):
                continue
            reachable.add(node)
            stack.extend(s >> 1 for s in self.fanins(node))
        for node in self.gates():
            if node not in reachable:
                continue
            a, b = self.fanins(node)
            mapping[node] = new.and_(
                mapping[a >> 1] ^ (a & 1), mapping[b >> 1] ^ (b & 1)
            )
        for s, name in zip(self._outputs, self._output_names):
            new.add_po(mapping[s >> 1] ^ (s & 1), name)
        return new

    def __repr__(self) -> str:
        return (
            f"Aig(name={self.name!r}, pis={self.num_pis}, pos={self.num_pos}, "
            f"gates={self.num_gates})"
        )

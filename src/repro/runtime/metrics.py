"""Hot-path counters for the rewriting passes (docs/PERFORMANCE.md).

The functional-hashing hot loop — cut enumeration, NPN canonization,
database lookup, structure rebuild — is where the paper's runtime claim
lives.  :class:`PassMetrics` is the lightweight counter object threaded
through :func:`repro.core.cuts.enumerate_cuts`,
:func:`repro.rewriting.top_down.rewrite_top_down`,
:func:`repro.rewriting.bottom_up.rewrite_bottom_up`,
:func:`repro.rewriting.engine.functional_hashing` and
:func:`repro.opt.flow.run_flow`; the CLI ``--metrics`` flag and
``benchmarks/bench_hotpath.py`` serialize it to JSON.

Counters are plain integer increments (no locks, no sampling) so the
observed pass stays representative: the bookkeeping adds well under 5%
to a pass and nothing when a phase records no events.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

__all__ = ["PassMetrics", "REJECT_REASONS"]

#: The reasons a cut can be rejected by a rewriter, in pipeline order.
REJECT_REASONS = (
    "trivial",
    "invalid-cone",
    "not-fanout-free",
    "db-miss",
    "no-gain",
    "depth-increase",
)


@dataclass
class PassMetrics:
    """Counters for one rewriting pass (or a merge of several).

    >>> m = PassMetrics(variant="BF")
    >>> with m.phase("enumerate"):
    ...     m.cuts_enumerated += 10
    >>> m.cuts_enumerated, sorted(m.phase_seconds)
    (10, ['enumerate'])
    """

    variant: str = ""
    #: gate nodes the rewriter looked at
    nodes_visited: int = 0
    #: database structures instantiated into the new network
    nodes_rebuilt: int = 0
    #: cuts stored by cut enumeration (across all nodes, incl. trivial)
    cuts_enumerated: int = 0
    #: non-trivial cuts the rewriter examined
    cuts_considered: int = 0
    #: cuts that produced an applicable replacement candidate
    cuts_admitted: int = 0
    #: rejected cuts bucketed by reason (see :data:`REJECT_REASONS`)
    cuts_rejected: dict[str, int] = field(default_factory=dict)
    #: NPN database lookups that found an entry
    db_hits: int = 0
    #: NPN database lookups that missed (class without an entry)
    db_misses: int = 0
    #: NPN canonizations answered by the global memo table
    npn_cache_hits: int = 0
    #: NPN canonizations computed from scratch
    npn_cache_misses: int = 0
    #: cut truth tables computed (incrementally or by cone simulation)
    cut_functions_computed: int = 0
    #: cut truth tables answered by the per-pass (node, leaves) memo
    cut_function_cache_hits: int = 0
    #: cut truth tables produced by the level-batched array evaluator
    batch_cut_functions: int = 0
    #: compiled network levels swept by the batch evaluator
    batch_levels: int = 0
    #: unique functions canonized through a vectorized lookup_batch sweep
    batch_npn_lookups: int = 0
    #: SAT solver counters accumulated from exact-synthesis calls; the
    #: ``sat_*`` keys match SynthesisResult and benchmarks/bench_exact.py
    sat_conflicts: int = 0
    sat_propagations: int = 0
    sat_decisions: int = 0
    sat_restarts: int = 0
    sat_learned: int = 0
    #: portfolio lane fates ("<backend>:<outcome>" -> count) from
    #: SAT backend races; empty on the pure-internal path
    sat_backend_events: dict[str, int] = field(default_factory=dict)
    #: dynamic-database lookups answered from the in-memory LRU tier
    store_hits: int = 0
    #: dynamic-database lookups answered from the persistent NPN store
    store_disk_hits: int = 0
    #: dynamic-database lookups that synthesized a fresh entry
    store_synth: int = 0
    #: classes dropped from the dynamic database's in-memory LRU
    store_evictions: int = 0
    #: store entries shrunk or proven by background ``db improve`` work
    store_improved: int = 0
    #: gate constructions answered by the kernel's structural-hash table
    kernel_strash_hits: int = 0
    #: gate constructions simplified away by a kernel facade unit rule
    kernel_unit_rules: int = 0
    #: 64-bit gate-words evaluated by the shared simulation engine
    sim_words: int = 0
    #: wall-clock seconds per phase ("enumerate", "rewrite", "cleanup", ...)
    phase_seconds: dict[str, float] = field(default_factory=dict)

    # -- recording ---------------------------------------------------------

    def reject(self, reason: str) -> None:
        """Count one rejected cut under *reason*."""
        self.cuts_rejected[reason] = self.cuts_rejected.get(reason, 0) + 1

    def record_sat(self, result) -> None:
        """Accumulate the solver counters of one SynthesisResult."""
        self.sat_conflicts += result.conflicts
        self.sat_propagations += result.propagations
        self.sat_decisions += result.decisions
        self.sat_restarts += result.restarts
        self.sat_learned += result.learned
        self.record_backend_events(getattr(result, "backend_events", None))

    def record_backend_events(self, events: dict[str, int] | None) -> None:
        """Accumulate per-lane portfolio fates (no-op for None/empty)."""
        if not events:
            return
        for key, count in events.items():
            self.sat_backend_events[key] = (
                self.sat_backend_events.get(key, 0) + count
            )

    def record_network(self, net) -> None:
        """Accumulate (and reset) the kernel counters of one network.

        Call once per network the pass constructed or simulated; the
        counters are zeroed so a network observed by several phases is
        never double-counted.
        """
        self.kernel_strash_hits += net.strash_hits
        self.kernel_unit_rules += net.unit_rules
        self.sim_words += net.sim_words
        net.strash_hits = 0
        net.unit_rules = 0
        net.sim_words = 0

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Time a phase; nested/repeated uses accumulate."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.phase_seconds[name] = self.phase_seconds.get(name, 0.0) + elapsed

    def merge(self, other: "PassMetrics") -> None:
        """Accumulate *other* into this object (for multi-pass totals)."""
        self.nodes_visited += other.nodes_visited
        self.nodes_rebuilt += other.nodes_rebuilt
        self.cuts_enumerated += other.cuts_enumerated
        self.cuts_considered += other.cuts_considered
        self.cuts_admitted += other.cuts_admitted
        self.db_hits += other.db_hits
        self.db_misses += other.db_misses
        self.npn_cache_hits += other.npn_cache_hits
        self.npn_cache_misses += other.npn_cache_misses
        self.cut_functions_computed += other.cut_functions_computed
        self.cut_function_cache_hits += other.cut_function_cache_hits
        self.batch_cut_functions += other.batch_cut_functions
        self.batch_levels += other.batch_levels
        self.batch_npn_lookups += other.batch_npn_lookups
        self.sat_conflicts += other.sat_conflicts
        self.sat_propagations += other.sat_propagations
        self.sat_decisions += other.sat_decisions
        self.sat_restarts += other.sat_restarts
        self.sat_learned += other.sat_learned
        self.record_backend_events(other.sat_backend_events)
        self.store_hits += other.store_hits
        self.store_disk_hits += other.store_disk_hits
        self.store_synth += other.store_synth
        self.store_evictions += other.store_evictions
        self.store_improved += other.store_improved
        self.kernel_strash_hits += other.kernel_strash_hits
        self.kernel_unit_rules += other.kernel_unit_rules
        self.sim_words += other.sim_words
        for reason, count in other.cuts_rejected.items():
            self.cuts_rejected[reason] = self.cuts_rejected.get(reason, 0) + count
        for name, seconds in other.phase_seconds.items():
            self.phase_seconds[name] = self.phase_seconds.get(name, 0.0) + seconds

    # -- derived rates -----------------------------------------------------

    @staticmethod
    def _rate(hits: int, total: int) -> float:
        return hits / total if total else 0.0

    @property
    def db_hit_rate(self) -> float:
        """Fraction of database lookups that found an entry."""
        return self._rate(self.db_hits, self.db_hits + self.db_misses)

    @property
    def npn_cache_hit_rate(self) -> float:
        """Fraction of NPN canonizations answered from the memo table."""
        return self._rate(
            self.npn_cache_hits, self.npn_cache_hits + self.npn_cache_misses
        )

    @property
    def cut_function_hit_rate(self) -> float:
        """Fraction of cut-function queries answered from the per-pass memo."""
        return self._rate(
            self.cut_function_cache_hits,
            self.cut_function_cache_hits + self.cut_functions_computed,
        )

    @property
    def batch_function_fraction(self) -> float:
        """Fraction of computed cut functions produced by the batch path."""
        return self._rate(self.batch_cut_functions, self.cut_functions_computed)

    @property
    def store_hit_rate(self) -> float:
        """Fraction of dynamic-database lookups served without synthesis."""
        warm = self.store_hits + self.store_disk_hits
        return self._rate(warm, warm + self.store_synth)

    @property
    def total_seconds(self) -> float:
        """Sum of all recorded phase times."""
        return sum(self.phase_seconds.values())

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> dict:
        """Plain-JSON representation, including the derived rates."""
        return {
            "variant": self.variant,
            "nodes_visited": self.nodes_visited,
            "nodes_rebuilt": self.nodes_rebuilt,
            "cuts_enumerated": self.cuts_enumerated,
            "cuts_considered": self.cuts_considered,
            "cuts_admitted": self.cuts_admitted,
            "cuts_rejected": dict(self.cuts_rejected),
            "db_hits": self.db_hits,
            "db_misses": self.db_misses,
            "db_hit_rate": round(self.db_hit_rate, 4),
            "npn_cache_hits": self.npn_cache_hits,
            "npn_cache_misses": self.npn_cache_misses,
            "npn_cache_hit_rate": round(self.npn_cache_hit_rate, 4),
            "cut_functions_computed": self.cut_functions_computed,
            "cut_function_cache_hits": self.cut_function_cache_hits,
            "cut_function_hit_rate": round(self.cut_function_hit_rate, 4),
            "batch_cut_functions": self.batch_cut_functions,
            "batch_levels": self.batch_levels,
            "batch_npn_lookups": self.batch_npn_lookups,
            "batch_function_fraction": round(self.batch_function_fraction, 4),
            "sat_conflicts": self.sat_conflicts,
            "sat_propagations": self.sat_propagations,
            "sat_decisions": self.sat_decisions,
            "sat_restarts": self.sat_restarts,
            "sat_learned": self.sat_learned,
            "sat_backend_events": dict(self.sat_backend_events),
            "store_hits": self.store_hits,
            "store_disk_hits": self.store_disk_hits,
            "store_synth": self.store_synth,
            "store_evictions": self.store_evictions,
            "store_improved": self.store_improved,
            "store_hit_rate": round(self.store_hit_rate, 4),
            "kernel_strash_hits": self.kernel_strash_hits,
            "kernel_unit_rules": self.kernel_unit_rules,
            "sim_words": self.sim_words,
            "phase_seconds": {k: round(v, 6) for k, v in self.phase_seconds.items()},
        }

    @classmethod
    def from_dict(cls, data: dict) -> "PassMetrics":
        """Inverse of :meth:`to_dict` (derived-rate keys are ignored)."""
        metrics = cls(variant=data.get("variant", ""))
        for name in (
            "nodes_visited",
            "nodes_rebuilt",
            "cuts_enumerated",
            "cuts_considered",
            "cuts_admitted",
            "db_hits",
            "db_misses",
            "npn_cache_hits",
            "npn_cache_misses",
            "cut_functions_computed",
            "cut_function_cache_hits",
            "batch_cut_functions",
            "batch_levels",
            "batch_npn_lookups",
            "sat_conflicts",
            "sat_propagations",
            "sat_decisions",
            "sat_restarts",
            "sat_learned",
            "store_hits",
            "store_disk_hits",
            "store_synth",
            "store_evictions",
            "store_improved",
            "kernel_strash_hits",
            "kernel_unit_rules",
            "sim_words",
        ):
            setattr(metrics, name, int(data.get(name, 0)))
        metrics.cuts_rejected = {
            str(k): int(v) for k, v in data.get("cuts_rejected", {}).items()
        }
        metrics.sat_backend_events = {
            str(k): int(v) for k, v in data.get("sat_backend_events", {}).items()
        }
        metrics.phase_seconds = {
            str(k): float(v) for k, v in data.get("phase_seconds", {}).items()
        }
        return metrics

    def to_json(self) -> str:
        """Serialize to a JSON string."""
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "PassMetrics":
        """Parse a string produced by :meth:`to_json`."""
        return cls.from_dict(json.loads(text))

"""Batch jobs: specs, the retry/degradation ladder, and the crash-safe journal.

One *job* is one optimization of one network — a scripted flow
(:func:`repro.opt.flow.run_flow`) or a convergence iteration
(:func:`repro.opt.flow.optimize_until_convergence`) — executed by a
worker subprocess under :mod:`repro.runtime.supervisor`.  This module
holds everything about jobs that must survive a crash:

* :class:`JobSpec` — the serializable description of what to run;
* :func:`degraded` — the retry ladder: each retry runs with *weaker
  parameters* (``verify=cec → sim``, halved conflict budget, halved cut
  limit, large cuts back to the precomputed NPN-4 tier) so a job that
  failed on resource pressure still produces a verified, if less
  optimized, result before quarantine;
* :class:`JobJournal` — an append-only JSONL event log.  Every event is
  flushed and fsynced before the supervisor acts on it, and replay
  tolerates a torn final line (the PR 1 artifact rules applied to a log:
  a crash mid-append loses at most the event being written, never the
  file).  Replaying the journal reconstructs the exact batch state, so a
  ``kill -9`` of the supervisor loses nothing;
* :class:`BatchReport` — the merged outcome (per-job statuses, worker
  utilization, merged :class:`~repro.runtime.metrics.PassMetrics`),
  written atomically next to the journal.

Job lifecycle (journal events in parentheses)::

    pending (submit) -> running (start) -> done (done)
                             |                ^
                             v (failed)       | adopted on resume when a
                        pending (requeued) ---+ valid result artifact
                             |                  already exists
                             v after max attempts
                        quarantined (quarantined)

Exactly-once resume: ``done``/``quarantined`` are terminal — a resumed
supervisor never re-runs them.  A job left ``running`` by a dead
supervisor is re-queued, unless its result artifact is already on disk
and validates, in which case it is adopted as ``done`` without re-running.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Iterator

from .metrics import PassMetrics

__all__ = [
    "JobSpec",
    "JobRecord",
    "JobJournal",
    "BatchReport",
    "degraded",
    "load_result_artifact",
    "JOB_STATES",
]

#: The states a job moves through (see the module docstring's diagram).
JOB_STATES = ("pending", "running", "done", "failed", "quarantined")

#: Floors for the degradation ladder — degrade, never disable.
MIN_CONFLICT_LIMIT = 100
MIN_CUT_LIMIT = 2


@dataclass(frozen=True)
class JobSpec:
    """Serializable description of one batch optimization job.

    ``network`` locates the input circuit: ``{"generate": name}`` with an
    optional ``"width"`` for the built-in EPFL generators, or
    ``{"blif": path}`` / ``{"bench": path}`` for files.  ``mode`` selects
    the runner: ``"flow"`` applies ``script`` once, ``"converge"``
    repeats ``variant`` to a fixpoint (``max_passes`` bound).
    """

    job_id: str
    network: dict
    script: tuple[str, ...] = ("BF",)
    mode: str = "flow"
    variant: str = "BF"
    max_passes: int = 10
    #: verification policy inside the worker: "off", "sim", or "cec"
    verify: str = "sim"
    #: SAT backend selection for solver-backed work: "auto", "internal",
    #: or "portfolio" (see repro.sat.portfolio)
    sat_backend: str = "internal"
    time_limit: float | None = None
    conflict_limit: int | None = None
    cut_limit: int | None = None
    #: cut width for functional-hashing steps (None = engine default 4;
    #: 5 or 6 runs against a lazily-populated DynamicDatabase)
    cut_size: int | None = None
    #: persistent NPN store path backing cut_size > 4 (see
    #: repro.database.store.NpnStore); ignored at the default cut size
    npn_store: str | None = None
    #: address-space rlimit for the worker process, in MiB
    mem_limit_mb: int | None = None
    #: alternative NPN database path (None = packaged default)
    db: str | None = None
    #: where the worker writes the optimized network (BLIF), if anywhere
    output: str | None = None
    #: where the worker appends per-step progress JSONL lines while the
    #: job runs (the serving tier polls this); None = no streaming
    progress: str | None = None
    #: mode-specific extra data (JSON-serializable dict); used by modes
    #: that do not operate on a network, e.g. "db-improve"
    payload: dict | None = None

    def to_dict(self) -> dict:
        data = {
            "job_id": self.job_id,
            "network": dict(self.network),
            "script": list(self.script),
            "mode": self.mode,
            "variant": self.variant,
            "max_passes": self.max_passes,
            "verify": self.verify,
            "sat_backend": self.sat_backend,
            "time_limit": self.time_limit,
            "conflict_limit": self.conflict_limit,
            "cut_limit": self.cut_limit,
            "cut_size": self.cut_size,
            "npn_store": self.npn_store,
            "mem_limit_mb": self.mem_limit_mb,
            "db": self.db,
            "output": self.output,
            "progress": self.progress,
            "payload": self.payload,
        }
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "JobSpec":
        payload = data.get("payload")
        return cls(
            job_id=str(data["job_id"]),
            network=dict(data["network"]),
            script=tuple(data.get("script", ("BF",))),
            mode=str(data.get("mode", "flow")),
            variant=str(data.get("variant", "BF")),
            max_passes=int(data.get("max_passes", 10)),
            verify=str(data.get("verify", "sim")),
            sat_backend=str(data.get("sat_backend", "internal")),
            time_limit=_opt_float(data.get("time_limit")),
            conflict_limit=_opt_int(data.get("conflict_limit")),
            cut_limit=_opt_int(data.get("cut_limit")),
            cut_size=_opt_int(data.get("cut_size")),
            npn_store=_opt_str(data.get("npn_store")),
            mem_limit_mb=_opt_int(data.get("mem_limit_mb")),
            db=_opt_str(data.get("db")),
            output=_opt_str(data.get("output")),
            progress=_opt_str(data.get("progress")),
            payload=dict(payload) if payload is not None else None,
        )


def _opt_float(value) -> float | None:
    return None if value is None else float(value)


def _opt_int(value) -> int | None:
    return None if value is None else int(value)


def _opt_str(value) -> str | None:
    return None if value is None else str(value)


def degraded(spec: JobSpec) -> tuple[JobSpec, list[str]]:
    """One rung down the retry ladder: weaker parameters, same job.

    Returns the degraded spec and a human-readable list of the applied
    degradations (empty when the spec is already at the floor — the
    retry then only buys a fresh process).  Verification is weakened from
    ``cec`` to ``sim`` but never below: a retried job must still produce
    a verified result.
    """
    notes: list[str] = []
    changes: dict = {}
    if spec.sat_backend != "internal":
        # A misbehaving external solver must not fail the job twice:
        # retries run on the trusted in-process solver alone.
        changes["sat_backend"] = "internal"
        notes.append(f"sat_backend:{spec.sat_backend}->internal")
    if spec.verify == "cec":
        changes["verify"] = "sim"
        notes.append("verify:cec->sim")
    if spec.cut_size is not None and spec.cut_size > 4:
        # Large-cut hashing puts on-demand synthesis on the hot path; a
        # struggling job retries at the precomputed NPN-4 tier first.
        changes["cut_size"] = 4
        notes.append(f"cut_size:{spec.cut_size}->4")
    if spec.conflict_limit is not None and spec.conflict_limit > MIN_CONFLICT_LIMIT:
        new_limit = max(MIN_CONFLICT_LIMIT, spec.conflict_limit // 2)
        changes["conflict_limit"] = new_limit
        notes.append(f"conflict_limit:{spec.conflict_limit}->{new_limit}")
    # The engine default cut limit is 8; an unset spec degrades from there.
    effective_cuts = spec.cut_limit if spec.cut_limit is not None else 8
    if effective_cuts > MIN_CUT_LIMIT:
        new_cuts = max(MIN_CUT_LIMIT, effective_cuts // 2)
        changes["cut_limit"] = new_cuts
        notes.append(f"cut_limit:{effective_cuts}->{new_cuts}")
    if not changes:
        return spec, notes
    return replace(spec, **changes), notes


# ----------------------------------------------------------------------
# journal
# ----------------------------------------------------------------------


@dataclass
class JobRecord:
    """Replayed state of one job (see :meth:`JobJournal.replay`)."""

    spec: JobSpec
    state: str = "pending"
    attempts: int = 0
    pid: int | None = None
    #: spec actually used by the latest attempt (after degradation)
    attempt_spec: JobSpec | None = None
    degradations: list[str] = field(default_factory=list)
    last_error: str | None = None
    traceback: str | None = None
    rusage: dict | None = None
    result: dict | None = None
    #: True when a resume adopted an existing result artifact
    adopted: bool = False

    @property
    def effective_spec(self) -> JobSpec:
        return self.attempt_spec if self.attempt_spec is not None else self.spec


class JournalReplay:
    """Outcome of replaying a journal file."""

    def __init__(self) -> None:
        self.records: dict[str, JobRecord] = {}
        #: submit order, so scheduling is stable across resumes
        self.order: list[str] = []
        self.skipped_lines = 0
        self.events = 0

    def by_state(self, state: str) -> list[JobRecord]:
        return [
            self.records[job_id]
            for job_id in self.order
            if self.records[job_id].state == state
        ]


class JobJournal:
    """Append-only, fsynced JSONL event log for a batch.

    Writes follow the PR 1 crash-safety rules adapted to a log: each
    event is one JSON line appended with ``O_APPEND`` semantics, flushed
    and fsynced before :meth:`append` returns, so the supervisor never
    acts on an event that could be lost.  A crash mid-append leaves at
    most one torn final line, which :meth:`replay` discards (torn or
    otherwise malformed lines are counted in ``skipped_lines``, mirroring
    the NPN database loader).
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fp = open(self.path, "ab")

    def close(self) -> None:
        if self._fp is not None:
            self._fp.close()
            self._fp = None

    def __enter__(self) -> "JobJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- writing -----------------------------------------------------------

    def append(self, event: str, job_id: str, **payload) -> None:
        """Durably record one event before the caller acts on it."""
        record = {"event": event, "job": job_id}
        record.update(payload)
        line = json.dumps(record, sort_keys=True) + "\n"
        self._fp.write(line.encode("utf-8"))
        self._fp.flush()
        os.fsync(self._fp.fileno())

    def submit(self, spec: JobSpec) -> None:
        self.append("submit", spec.job_id, spec=spec.to_dict())

    def start(self, job_id: str, attempt: int, pid: int, spec: JobSpec) -> None:
        self.append("start", job_id, attempt=attempt, pid=pid, spec=spec.to_dict())

    def done(self, job_id: str, result: dict, adopted: bool = False) -> None:
        self.append("done", job_id, result=result, adopted=adopted)

    def failed(
        self,
        job_id: str,
        attempt: int,
        error: str,
        traceback: str | None = None,
        rusage: dict | None = None,
    ) -> None:
        self.append(
            "failed", job_id, attempt=attempt, error=error,
            traceback=traceback, rusage=rusage,
        )

    def requeued(self, job_id: str, degradations: list[str]) -> None:
        self.append("requeued", job_id, degradations=degradations)

    def quarantined(
        self,
        job_id: str,
        error: str,
        traceback: str | None = None,
        rusage: dict | None = None,
    ) -> None:
        self.append(
            "quarantined", job_id, error=error, traceback=traceback, rusage=rusage
        )

    # -- replay ------------------------------------------------------------

    @classmethod
    def replay(cls, path: str | Path) -> JournalReplay:
        """Reconstruct batch state from the journal at *path*.

        Unknown events and malformed lines are skipped (and counted), so
        a journal written by a newer version or torn by a crash still
        replays; the state machine is driven only by events whose job is
        known (except ``submit``, which introduces it).
        """
        state = JournalReplay()
        path = Path(path)
        if not path.exists():
            return state
        with open(path, "rb") as fp:
            for raw in fp:
                try:
                    data = json.loads(raw.decode("utf-8"))
                    event = data["event"]
                    job_id = str(data["job"])
                except (ValueError, KeyError, UnicodeDecodeError):
                    state.skipped_lines += 1
                    continue
                state.events += 1
                if event == "submit":
                    if job_id not in state.records:
                        try:
                            spec = JobSpec.from_dict(data["spec"])
                        except (KeyError, TypeError, ValueError):
                            state.skipped_lines += 1
                            continue
                        state.records[job_id] = JobRecord(spec=spec)
                        state.order.append(job_id)
                    continue
                record = state.records.get(job_id)
                if record is None or record.state in ("done", "quarantined"):
                    # Terminal states are immutable: a duplicate or stale
                    # event (e.g. replayed from a pre-crash attempt) is
                    # ignored rather than double-counting the job.
                    continue
                if event == "start":
                    record.state = "running"
                    record.attempts = int(data.get("attempt", record.attempts + 1))
                    record.pid = _opt_int(data.get("pid"))
                    try:
                        record.attempt_spec = JobSpec.from_dict(data["spec"])
                    except (KeyError, TypeError, ValueError):
                        record.attempt_spec = None
                elif event == "done":
                    record.state = "done"
                    record.result = data.get("result")
                    record.adopted = bool(data.get("adopted", False))
                elif event == "failed":
                    record.state = "failed"
                    record.last_error = _opt_str(data.get("error"))
                    record.traceback = _opt_str(data.get("traceback"))
                    record.rusage = data.get("rusage")
                elif event == "requeued":
                    record.state = "pending"
                    degradations = list(data.get("degradations", []))
                    record.degradations.extend(degradations)
                    if "resume:interrupted" in degradations:
                        # The interrupted attempt never concluded; it is
                        # re-run under the same attempt number.
                        record.attempts = max(0, record.attempts - 1)
                elif event == "quarantined":
                    record.state = "quarantined"
                    record.last_error = _opt_str(data.get("error"))
                    record.traceback = _opt_str(data.get("traceback"))
                    record.rusage = data.get("rusage")
                else:
                    state.skipped_lines += 1
        return state


# ----------------------------------------------------------------------
# result artifacts
# ----------------------------------------------------------------------

#: keys a worker result artifact must carry to be adopted
_RESULT_REQUIRED_KEYS = ("job_id", "status")


def load_result_artifact(path: str | Path, job_id: str) -> dict | None:
    """Load and validate a worker result artifact.

    Returns the payload dict, or ``None`` when the file is missing,
    unparsable, or belongs to a different job (the corrupt file is
    quarantined so the evidence survives, per the artifact rules).
    """
    from .artifacts import quarantine

    path = Path(path)
    if not path.exists():
        return None
    try:
        with open(path, "r", encoding="utf-8") as fp:
            payload = json.load(fp)
    except (ValueError, OSError):
        quarantine(path)
        return None
    if not isinstance(payload, dict) or any(
        key not in payload for key in _RESULT_REQUIRED_KEYS
    ):
        quarantine(path)
        return None
    if str(payload["job_id"]) != job_id:
        quarantine(path)
        return None
    return payload


# ----------------------------------------------------------------------
# batch report
# ----------------------------------------------------------------------


@dataclass
class BatchReport:
    """Merged outcome of one supervised batch run."""

    total: int = 0
    done: int = 0
    quarantined: int = 0
    #: failed attempts across all jobs (retries included)
    failed_attempts: int = 0
    retries: int = 0
    #: jobs whose result was adopted from a previous run on resume
    adopted: int = 0
    wall_seconds: float = 0.0
    #: True when the run was stopped early by a shutdown request (the
    #: journal is resumable; unfinished jobs are pending, not lost)
    interrupted: bool = False
    #: peak number of simultaneously live workers
    max_concurrent: int = 0
    #: worker slot label -> number of jobs that slot completed.  Labels
    #: are executor slot names (``"0"``, ``"1"``, …) for a single pool
    #: and shard-qualified (``"h0/0"``) after a sweep merge, so pools
    #: from different shards never alias each other's slot 0.
    jobs_per_slot: dict[str, int] = field(default_factory=dict)
    #: shard name -> per-shard summary, populated by :meth:`merge_shard`
    shards: dict[str, dict] = field(default_factory=dict)
    #: merged hot-path counters from every successful job
    metrics: PassMetrics = field(default_factory=PassMetrics)
    #: per-job summaries in submit order
    jobs: list[dict] = field(default_factory=list)

    @property
    def workers_used(self) -> int:
        """Distinct worker slots (across all shards) that completed a job."""
        return sum(1 for count in self.jobs_per_slot.values() if count)

    def count_slot(self, slot: int | str) -> None:
        """Credit one completed job to executor slot *slot*."""
        key = str(slot)
        self.jobs_per_slot[key] = self.jobs_per_slot.get(key, 0) + 1

    def merge_shard(self, name: str, shard: "BatchReport") -> None:
        """Fold one shard's report into this (sweep-level) report.

        Slot utilization is namespaced per shard (``<name>/<slot>``):
        the pre-sweep accounting assumed a single worker pool, so slot 0
        of every shard would otherwise collapse into one counter and
        under-report both utilization and ``workers_used``.
        """
        self.total += shard.total
        self.done += shard.done
        self.quarantined += shard.quarantined
        self.failed_attempts += shard.failed_attempts
        self.retries += shard.retries
        self.adopted += shard.adopted
        self.interrupted = self.interrupted or shard.interrupted
        self.max_concurrent += shard.max_concurrent
        for slot, count in shard.jobs_per_slot.items():
            key = f"{name}/{slot}"
            self.jobs_per_slot[key] = self.jobs_per_slot.get(key, 0) + count
        self.metrics.merge(shard.metrics)
        for summary in shard.jobs:
            entry = dict(summary)
            entry["shard"] = name
            self.jobs.append(entry)
        self.shards[name] = {
            "total": shard.total,
            "done": shard.done,
            "quarantined": shard.quarantined,
            "adopted": shard.adopted,
            "retries": shard.retries,
            "workers_used": shard.workers_used,
            "wall_seconds": round(shard.wall_seconds, 6),
            "interrupted": shard.interrupted,
        }

    def to_dict(self) -> dict:
        return {
            "total": self.total,
            "done": self.done,
            "quarantined": self.quarantined,
            "failed_attempts": self.failed_attempts,
            "retries": self.retries,
            "adopted": self.adopted,
            "wall_seconds": round(self.wall_seconds, 6),
            "interrupted": self.interrupted,
            "max_concurrent": self.max_concurrent,
            "workers_used": self.workers_used,
            "jobs_per_slot": {str(k): v for k, v in self.jobs_per_slot.items()},
            "shards": {name: dict(info) for name, info in self.shards.items()},
            "metrics": self.metrics.to_dict(),
            "jobs": list(self.jobs),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "BatchReport":
        """Rehydrate a report persisted by :meth:`to_dict` (shard merges
        read per-shard ``report.json`` files written by other hosts)."""
        report = cls(
            total=int(data.get("total", 0)),
            done=int(data.get("done", 0)),
            quarantined=int(data.get("quarantined", 0)),
            failed_attempts=int(data.get("failed_attempts", 0)),
            retries=int(data.get("retries", 0)),
            adopted=int(data.get("adopted", 0)),
            wall_seconds=float(data.get("wall_seconds", 0.0)),
            interrupted=bool(data.get("interrupted", False)),
            max_concurrent=int(data.get("max_concurrent", 0)),
            jobs_per_slot={
                str(k): int(v)
                for k, v in dict(data.get("jobs_per_slot", {})).items()
            },
            shards={
                str(k): dict(v) for k, v in dict(data.get("shards", {})).items()
            },
            jobs=[dict(job) for job in data.get("jobs", [])],
        )
        metrics = data.get("metrics")
        if isinstance(metrics, dict):
            report.metrics = PassMetrics.from_dict(metrics)
        return report

    def iter_job_summaries(self) -> Iterator[dict]:
        return iter(self.jobs)

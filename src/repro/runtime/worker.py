"""Worker subprocess entry point: ``python -m repro.runtime.worker``.

One worker runs exactly one :class:`~repro.runtime.jobs.JobSpec` and
exits.  The process boundary is the isolation unit the in-process
runtime cannot provide: a CDCL run that ignores its poll points, a
memory blowup, or a hard crash takes down *this* process only — the
supervisor's watchdog and rlimits contain it.

Protocol (see :mod:`repro.runtime.supervisor` for the other side):

* argv: ``worker SPEC_PATH RESULT_PATH`` — the spec is a JSON file
  written atomically by the supervisor; the result is written atomically
  by the worker (so a kill at any instant leaves either no result or a
  complete one, never a torn file);
* env: ``REPRO_FAULTS`` arms :mod:`repro.runtime.faults` in the child so
  fault-injection tests exercise the supervised path end-to-end;
* exit code 0 means "a result artifact was written" — its ``status``
  field says whether the job succeeded (``ok``) or failed in a
  controlled way (``failed``, with the traceback captured).  Any other
  exit (nonzero, signal) means "no trustworthy result": the supervisor
  treats it as a crash.

The worker applies its own safety rails before touching the job: the
address-space rlimit from the spec, and an in-process
:class:`~repro.runtime.budget.Budget` built from the spec's limits so a
healthy job exits politely well before the supervisor's hard watchdog
(SIGTERM → grace → SIGKILL) has to fire.
"""

from __future__ import annotations

import json
import os
import signal
import sys
import time
import traceback as traceback_module

from .artifacts import atomic_write_text
from .budget import Budget
from .faults import arm_from_env, fault_active
from .jobs import JobSpec
from .metrics import PassMetrics

__all__ = ["run_job", "main"]

#: exit code for the injected hard-crash fault (any nonzero would do;
#: a distinctive value makes supervisor logs readable)
CRASH_EXIT_CODE = 77


def _set_memory_limit(mem_limit_mb: int) -> None:
    """Cap the worker's address space (best effort; Linux/macOS only)."""
    try:
        import resource
    except ImportError:  # non-POSIX platform
        return
    limit = mem_limit_mb * 1024 * 1024
    try:
        _, hard = resource.getrlimit(resource.RLIMIT_AS)
        if hard != resource.RLIM_INFINITY:
            limit = min(limit, hard)
        resource.setrlimit(resource.RLIMIT_AS, (limit, hard))
    except (ValueError, OSError):
        pass


def _rusage_dict() -> dict | None:
    """Self rusage snapshot for the result artifact (None off-POSIX)."""
    try:
        import resource
    except ImportError:
        return None
    usage = resource.getrusage(resource.RUSAGE_SELF)
    return {
        "utime": usage.ru_utime,
        "stime": usage.ru_stime,
        "maxrss_kb": usage.ru_maxrss,
    }


def _load_network(network: dict):
    from ..core.mig import Mig  # noqa: F401 - type only

    if "generate" in network:
        from ..generators import resolve_generator

        return resolve_generator(
            str(network["generate"]),
            width=(
                None if network.get("width") is None
                else int(network["width"])
            ),
        )
    if "blif" in network:
        from ..io.blif import read_blif

        with open(network["blif"], "r", encoding="utf-8") as fp:
            return read_blif(fp)
    if "bench" in network:
        from ..io.bench import read_bench

        with open(network["bench"], "r", encoding="utf-8") as fp:
            return read_bench(fp)
    raise ValueError(f"job network spec {network!r} names no circuit source")


def _open_progress(spec: JobSpec):
    """Per-step progress appender for ``spec.progress`` (None when unset).

    Each record is one fsynced JSON line, so the serving tier's poll
    endpoint reads a prefix of complete events plus at most one torn
    tail (the journal discipline applied to a progress feed).  Any
    failure to report progress is swallowed: observability must never
    fail the job it observes.
    """
    if spec.progress is None:
        return None
    try:
        path = spec.progress
        os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
        fp = open(path, "ab")
    except OSError:
        return None

    def append(record: dict) -> None:
        try:
            record = dict(record)
            record["ts"] = time.time()
            fp.write((json.dumps(record, sort_keys=True) + "\n").encode("utf-8"))
            fp.flush()
            os.fsync(fp.fileno())
        except (OSError, ValueError, TypeError):
            pass

    return append


def _run_db_improve_job(spec: JobSpec, start: float) -> dict:
    """One NPN class of SAT-phase database improvement (``db-improve``).

    The payload carries the class representative and the current entry
    (JSONL line); the result carries the improved entry the same way.
    The heavy lifting is :func:`repro.database.generate.improve_class` —
    the exact function the serial path runs, so the database content is
    identical whether or not it was produced under supervision.
    """
    from ..database.generate import improve_class
    from ..database.npn_db import entry_from_json, entry_to_json

    payload = spec.payload or {}
    try:
        rep = int(payload["rep"])
        num_vars = int(payload["num_vars"])
        entry = entry_from_json(payload["entry"])
    except (KeyError, TypeError, ValueError) as exc:
        raise ValueError(f"malformed db-improve payload: {exc}") from exc
    # The SAT budget rides in spec.conflict_limit so the supervisor's
    # retry-with-degradation ladder can actually degrade it; the payload
    # copy is only a fallback for hand-built specs.
    budget = spec.conflict_limit
    if budget is None and payload.get("budget") is not None:
        budget = int(payload["budget"])

    deadline = None
    if spec.time_limit is not None:
        # Leave the watchdog's grace window to write the result artifact.
        deadline = time.monotonic() + max(0.5, spec.time_limit - 0.5)

    new_entry, conflicts = improve_class(
        rep, entry, num_vars, budget, deadline, sat_backend=spec.sat_backend
    )
    if new_entry.to_mig().simulate()[0] != rep:
        raise AssertionError(f"db-improve produced wrong function for 0x{rep:x}")
    return {
        "job_id": spec.job_id,
        "status": "ok",
        "rep": rep,
        "entry": entry_to_json(new_entry),
        "size_before": entry.size,
        "size_after": new_entry.size,
        "proven": new_entry.proven,
        "conflicts": conflicts,
        "runtime": round(time.perf_counter() - start, 6),
        "rusage": _rusage_dict(),
        "pid": os.getpid(),
    }


def run_job(spec: JobSpec) -> dict:
    """Execute one job in-process and return the result payload.

    Factored out of :func:`main` so tests can exercise the job semantics
    without a subprocess; the supervised path adds the isolation around
    exactly this function.
    """
    from ..database.npn_db import NpnDatabase
    from ..opt.flow import optimize_until_convergence, run_flow

    start = time.perf_counter()

    if spec.mode == "db-improve":
        return _run_db_improve_job(spec, start)

    mig = _load_network(spec.network)

    progress = _open_progress(spec)
    if progress is not None:
        progress(
            {
                "event": "start",
                "size_before": mig.num_gates,
                "depth_before": mig.depth(),
                "total_steps": len(spec.script) if spec.mode == "flow" else None,
            }
        )

    needs_db = spec.mode == "converge" or any(
        step.strip().upper() in _variant_names() for step in spec.script
    )
    db = store = None
    if needs_db:
        if spec.cut_size is not None and spec.cut_size != 4:
            # Large-cut tier: a lazily populated dynamic database, backed
            # by the shared persistent store when the spec names one.
            from ..rewriting.dynamic_db import DynamicDatabase

            db = DynamicDatabase(num_vars=spec.cut_size, store=spec.npn_store)
            store = db.store
        else:
            db = NpnDatabase.load(spec.db)

    budget = None
    if spec.time_limit is not None or spec.conflict_limit is not None:
        budget = Budget.from_limits(
            time_limit=spec.time_limit, conflict_limit=spec.conflict_limit
        )

    metrics = PassMetrics()
    steps_payload: list[dict] = []
    if spec.mode == "converge":
        result, passes = optimize_until_convergence(
            mig,
            db,
            variant=spec.variant,
            max_passes=spec.max_passes,
            budget=budget,
            verify=spec.verify,
            on_error="rollback",
            metrics=metrics,
            cut_limit=spec.cut_limit,
            cut_size=spec.cut_size,
            sat_backend=spec.sat_backend,
        )
        steps_payload.append({"step": spec.variant, "status": "ok", "passes": passes})
        if progress is not None:
            progress(
                {
                    "event": "step",
                    "step": spec.variant,
                    "status": "ok",
                    "passes": passes,
                    "size_after": result.num_gates,
                    "depth_after": result.depth(),
                }
            )
    elif spec.mode == "flow":
        on_step = None
        if progress is not None:
            def on_step(stats):
                progress(
                    {
                        "event": "step",
                        "step": stats.step,
                        "status": stats.status,
                        "verified": stats.verified,
                        "runtime": round(stats.runtime, 6),
                        "size_after": stats.size_after,
                        "depth_after": stats.depth_after,
                    }
                )

        result, history = run_flow(
            mig,
            db,
            list(spec.script),
            budget=budget,
            verify=spec.verify,
            on_error="rollback",
            cut_limit=spec.cut_limit,
            cut_size=spec.cut_size,
            on_step=on_step,
            sat_backend=spec.sat_backend,
        )
        for stats in history:
            entry = {
                "step": stats.step,
                "status": stats.status,
                "verified": stats.verified,
                "runtime": round(stats.runtime, 6),
                "size_after": stats.size_after,
                "depth_after": stats.depth_after,
            }
            if stats.error is not None:
                entry["error"] = stats.error
            if stats.metrics is not None:
                metrics.merge(stats.metrics)
            steps_payload.append(entry)
    else:
        raise ValueError(
            f"unknown job mode {spec.mode!r}; use 'flow', 'converge' or 'db-improve'"
        )

    if spec.output is not None:
        import io as io_module
        from pathlib import Path

        from ..io.blif import write_blif

        buf = io_module.StringIO()
        write_blif(result, buf)
        Path(spec.output).parent.mkdir(parents=True, exist_ok=True)
        atomic_write_text(spec.output, buf.getvalue())

    payload = {
        "job_id": spec.job_id,
        "status": "ok",
        "size_before": mig.num_gates,
        "depth_before": mig.depth(),
        "size_after": result.num_gates,
        "depth_after": result.depth(),
        "runtime": round(time.perf_counter() - start, 6),
        "verify": spec.verify,
        "steps": steps_payload,
        "metrics": metrics.to_dict(),
        "output": spec.output,
        "rusage": _rusage_dict(),
        "pid": os.getpid(),
    }
    if store is not None:
        payload["npn_store"] = store.stats()
        store.close()
    return payload


def _variant_names() -> tuple[str, ...]:
    from ..rewriting.engine import VARIANTS

    return VARIANTS


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if len(argv) != 2:
        print("usage: python -m repro.runtime.worker SPEC_PATH RESULT_PATH",
              file=sys.stderr)
        return 2
    spec_path, result_path = argv

    arm_from_env()

    with open(spec_path, "r", encoding="utf-8") as fp:
        spec = JobSpec.from_dict(json.load(fp))

    if spec.mem_limit_mb is not None:
        _set_memory_limit(spec.mem_limit_mb)

    if fault_active("worker.hang"):
        # Model a worker stuck in native code that ignores every deadline
        # *and* SIGTERM — only the supervisor's SIGKILL escalation ends it.
        try:
            signal.signal(signal.SIGTERM, signal.SIG_IGN)
        except (ValueError, OSError):
            pass
        while True:
            pass

    if fault_active("worker.crash"):
        # Model a segfault: vanish without a result artifact.
        os._exit(CRASH_EXIT_CODE)

    try:
        payload = run_job(spec)
    except BaseException as exc:  # noqa: BLE001 - process boundary
        payload = {
            "job_id": spec.job_id,
            "status": "failed",
            "error": f"{type(exc).__name__}: {exc}",
            "traceback": traceback_module.format_exc(),
            "rusage": _rusage_dict(),
            "pid": os.getpid(),
        }
    atomic_write_text(result_path, json.dumps(payload, sort_keys=True) + "\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())

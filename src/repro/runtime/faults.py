"""Fault injection for testing the fault-tolerant runtime.

The rollback / quarantine / budget machinery is only trustworthy if it is
exercised against *real* failures, so production code carries explicit,
zero-cost-when-idle fault hooks.  Tests arm them with the
:func:`inject` context manager::

    with inject("flow.wrong-rewrite"):
        result, history = run_flow(mig, db, ["BF"], verify="sim",
                                   on_error="rollback")
    assert history[0].status == "rolled-back"

Registered fault points (grep for ``fault_active`` to find the hooks):

``solver.timeout``
    :meth:`repro.sat.solver.Solver.solve` returns UNKNOWN immediately, as
    if the conflict budget were exhausted on entry.
``db.corrupt-entry``
    :meth:`repro.database.npn_db.NpnDatabase.lookup` returns an entry
    whose gate structure has been silently corrupted (output inverted),
    modeling a bad database row reaching the rewriting engine.
``flow.wrong-rewrite``
    :func:`repro.opt.flow.run_flow` inverts the first output of a step's
    result, modeling a miscompiling pass.

Each armed fault fires ``times`` times (default: unlimited within the
``with`` block) and counts its activations for assertions.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

__all__ = ["inject", "fault_active", "fired_count", "reset"]

# name -> remaining activations (None = unlimited while armed)
_armed: dict[str, int | None] = {}
# name -> probes to let pass before the fault starts firing
_skip: dict[str, int] = {}
_fired: dict[str, int] = {}


def fault_active(name: str) -> bool:
    """Check-and-consume: True when fault *name* should fire now.

    Called from production hook points; O(1) dict probe when nothing is
    armed, so the hooks are effectively free outside tests.
    """
    if name not in _armed:
        return False
    pending_skips = _skip.get(name, 0)
    if pending_skips > 0:
        _skip[name] = pending_skips - 1
        return False
    remaining = _armed[name]
    if remaining is not None:
        if remaining <= 0:
            return False
        _armed[name] = remaining - 1
    _fired[name] = _fired.get(name, 0) + 1
    return True


def fired_count(name: str) -> int:
    """How many times fault *name* has fired since the last reset."""
    return _fired.get(name, 0)


def reset() -> None:
    """Disarm every fault and clear fire counters."""
    _armed.clear()
    _skip.clear()
    _fired.clear()


@contextmanager
def inject(name: str, times: int | None = None, skip: int = 0) -> Iterator[None]:
    """Arm fault *name* for the duration of the block.

    *times* bounds how often it fires (``None`` = every probe); *skip*
    lets the first *skip* probes pass unharmed before firing starts —
    e.g. ``skip=1`` faults the second pass of an iteration.  Nested
    injections of the same name restore the previous arming on exit.
    """
    previous = _armed.get(name, _MISSING)
    previous_skip = _skip.get(name, _MISSING)
    _armed[name] = times
    _skip[name] = skip
    try:
        yield
    finally:
        if previous is _MISSING:
            _armed.pop(name, None)
        else:
            _armed[name] = previous
        if previous_skip is _MISSING:
            _skip.pop(name, None)
        else:
            _skip[name] = previous_skip


class _Missing:
    pass


_MISSING = _Missing()

"""Fault injection for testing the fault-tolerant runtime.

The rollback / quarantine / budget machinery is only trustworthy if it is
exercised against *real* failures, so production code carries explicit,
zero-cost-when-idle fault hooks.  Tests arm them with the
:func:`inject` context manager::

    with inject("flow.wrong-rewrite"):
        result, history = run_flow(mig, db, ["BF"], verify="sim",
                                   on_error="rollback")
    assert history[0].status == "rolled-back"

Registered fault points (grep for ``fault_active`` to find the hooks):

``solver.timeout``
    :meth:`repro.sat.solver.Solver.solve` returns UNKNOWN immediately, as
    if the conflict budget were exhausted on entry.
``sat.backend.crash``
    :meth:`repro.sat.backends.DimacsSubprocessBackend.solve` reports the
    lane dead before spawning anything, modeling an external solver
    binary that segfaults on startup.  The portfolio must treat the lane
    as UNKNOWN and win through another lane.
``sat.backend.garble``
    :meth:`repro.sat.backends.DimacsSubprocessBackend.solve` inverts the
    model an external solver claimed, modeling a lying or bit-flipped
    lane.  :func:`repro.sat.backends.validate_model` must reject it and
    the portfolio must never let it decide the verdict.
``db.corrupt-entry``
    :meth:`repro.database.npn_db.NpnDatabase.lookup` returns an entry
    whose gate structure has been silently corrupted (output inverted),
    modeling a bad database row reaching the rewriting engine.
``flow.wrong-rewrite``
    :func:`repro.opt.flow.run_flow` inverts the first output of a step's
    result, modeling a miscompiling pass.
``flow.corrupt-structure``
    :func:`repro.opt.flow.run_flow` mangles the structural invariants of
    a step's result (unsorted fanin triple), modeling a buggy pass that
    corrupts the network representation — caught by :meth:`Mig.check`.
``worker.crash``
    :mod:`repro.runtime.worker` exits abruptly without writing a result
    artifact, modeling a segfault.  Probed by the *supervisor* at spawn
    time (one firing dooms one worker), so ``times=1`` crashes exactly
    one attempt.
``worker.hang``
    :mod:`repro.runtime.worker` ignores SIGTERM and busy-loops past every
    deadline, modeling a worker stuck in native code; only the
    supervisor's SIGKILL escalation ends it.  Spawn-time probed like
    ``worker.crash``.
``cache.corrupt``
    :meth:`repro.runtime.cache.ResultCache.put` writes truncated garbage
    in place of the entry (atomically, so this models bad bytes — a
    partial upload, bit rot — not a torn write).  The next ``get`` must
    detect, quarantine, and miss.
``serve.crash``
    :meth:`repro.runtime.serve.OptimizationService.submit` kills the
    daemon with ``os._exit`` right after persisting an accepted request,
    modeling a crash between acceptance and execution; the restarted
    daemon must recover the job from disk.

Each armed fault fires ``times`` times (default: unlimited within the
``with`` block) and counts its activations for assertions.

Cross-process propagation: the supervisor serializes the armed table
into the ``REPRO_FAULTS`` environment variable (:func:`env_spec`) and
worker subprocesses re-arm from it (:func:`arm_from_env`), so a fault
injected in a test process is live inside every worker it supervises.
Activation counts do *not* propagate back — each process consumes its
own copy — which is why the ``worker.*`` faults are consumed on the
supervisor side instead.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator, Mapping

__all__ = [
    "inject",
    "fault_active",
    "fired_count",
    "reset",
    "armed_names",
    "env_spec",
    "arm_from_spec",
    "arm_from_env",
    "FAULTS_ENV_VAR",
]

#: environment variable carrying the armed-fault table across processes
FAULTS_ENV_VAR = "REPRO_FAULTS"

# name -> remaining activations (None = unlimited while armed)
_armed: dict[str, int | None] = {}
# name -> probes to let pass before the fault starts firing
_skip: dict[str, int] = {}
_fired: dict[str, int] = {}


def fault_active(name: str) -> bool:
    """Check-and-consume: True when fault *name* should fire now.

    Called from production hook points; O(1) dict probe when nothing is
    armed, so the hooks are effectively free outside tests.
    """
    if name not in _armed:
        return False
    pending_skips = _skip.get(name, 0)
    if pending_skips > 0:
        _skip[name] = pending_skips - 1
        return False
    remaining = _armed[name]
    if remaining is not None:
        if remaining <= 0:
            return False
        _armed[name] = remaining - 1
    _fired[name] = _fired.get(name, 0) + 1
    return True


def fired_count(name: str) -> int:
    """How many times fault *name* has fired since the last reset."""
    return _fired.get(name, 0)


def reset() -> None:
    """Disarm every fault and clear fire counters."""
    _armed.clear()
    _skip.clear()
    _fired.clear()


def armed_names(prefix: str = "") -> list[str]:
    """Names of currently armed faults (optionally filtered by prefix)."""
    return sorted(name for name in _armed if name.startswith(prefix))


def env_spec(exclude_prefix: str | None = None) -> str:
    """Serialize the armed table for a child process's environment.

    Format: ``name[:times=N][:skip=M]`` entries joined with ``,``;
    omitted ``times`` means unlimited.  Faults whose remaining count is
    zero are dropped.  *exclude_prefix* filters out families handled on
    the parent side (the supervisor excludes ``worker.``).
    """
    parts = []
    for name in sorted(_armed):
        if exclude_prefix is not None and name.startswith(exclude_prefix):
            continue
        remaining = _armed[name]
        if remaining is not None and remaining <= 0:
            continue
        entry = name
        if remaining is not None:
            entry += f":times={remaining}"
        skip = _skip.get(name, 0)
        if skip > 0:
            entry += f":skip={skip}"
        parts.append(entry)
    return ",".join(parts)


def arm_from_spec(spec: str) -> None:
    """Arm faults from an :func:`env_spec` string (malformed entries ignored)."""
    for entry in spec.split(","):
        entry = entry.strip()
        if not entry:
            continue
        fields = entry.split(":")
        name = fields[0]
        times: int | None = None
        skip = 0
        valid = bool(name)
        for option in fields[1:]:
            key, _, value = option.partition("=")
            try:
                if key == "times":
                    times = int(value)
                elif key == "skip":
                    skip = int(value)
                else:
                    valid = False
            except ValueError:
                valid = False
        if not valid:
            continue
        _armed[name] = times
        if skip > 0:
            _skip[name] = skip


def arm_from_env(environ: Mapping[str, str] | None = None) -> None:
    """Arm faults from ``REPRO_FAULTS`` (no-op when unset/empty)."""
    environ = os.environ if environ is None else environ
    spec = environ.get(FAULTS_ENV_VAR, "")
    if spec:
        arm_from_spec(spec)


@contextmanager
def inject(name: str, times: int | None = None, skip: int = 0) -> Iterator[None]:
    """Arm fault *name* for the duration of the block.

    *times* bounds how often it fires (``None`` = every probe); *skip*
    lets the first *skip* probes pass unharmed before firing starts —
    e.g. ``skip=1`` faults the second pass of an iteration.  Nested
    injections of the same name restore the previous arming on exit.
    """
    previous = _armed.get(name, _MISSING)
    previous_skip = _skip.get(name, _MISSING)
    _armed[name] = times
    _skip[name] = skip
    try:
        yield
    finally:
        if previous is _MISSING:
            _armed.pop(name, None)
        else:
            _armed[name] = previous
        if previous_skip is _MISSING:
            _skip.pop(name, None)
        else:
            _skip[name] = previous_skip


class _Missing:
    pass


_MISSING = _Missing()

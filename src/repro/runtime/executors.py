"""The pluggable executor layer: *where* job processes run.

PR 3's :class:`~repro.runtime.supervisor.Supervisor` was both the batch
*scheduler* (journal, retry ladder, adoption) and the *process pool*
(fork, poll, SIGTERM→SIGKILL watchdog).  This module extracts the second
role behind a small protocol so the scheduler no longer cares whether an
attempt runs as a local fork, or — one level up — a whole journal shard
runs as an independent ``migopt batch --shard`` invocation on another
host:

* :class:`Executor` — the protocol: ``submit`` / ``poll`` / ``cancel`` /
  ``drain`` over :class:`ExecutorTask` descriptions (an argv, an
  environment, an optional wall-clock watchdog);
* :class:`LocalExecutor` — today's fork-based worker pool, re-platformed
  byte-for-byte: slot allocation, the startup-margin-padded watchdog and
  the SIGTERM→grace→SIGKILL escalation are exactly the pre-refactor
  supervisor's (pinned by ``tests/runtime/test_executor_differential``);
* :class:`ShardExecutor` — one task per *journal shard*: the argv is
  wrapped in a per-host command template (``$REPRO_SWEEP_HOSTS``; plain
  names run local subprocesses, ``name=ssh hostA {cmd}``-style templates
  reach real fleets) and pinned to its host slot, so a sweep coordinator
  (:mod:`repro.runtime.sweep`) schedules shards exactly the way the
  supervisor schedules workers.

Every executor is single-use: create, submit/poll until done (or
``drain``), ``close``.
"""

from __future__ import annotations

import os
import subprocess
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Protocol, runtime_checkable

__all__ = [
    "ExecutorTask",
    "TaskHandle",
    "TaskExit",
    "Executor",
    "LocalExecutor",
    "HostSpec",
    "ShardExecutor",
    "parse_hosts",
    "HOSTS_ENV_VAR",
]

#: scheduler tick shared with the supervisor loop
POLL_INTERVAL = 0.02

#: environment variable naming the sweep fleet (see :func:`parse_hosts`)
HOSTS_ENV_VAR = "REPRO_SWEEP_HOSTS"


@dataclass(frozen=True)
class ExecutorTask:
    """One process-shaped unit of work an executor can run.

    ``time_limit`` arms the wall-clock watchdog: the process is SIGTERMed
    at ``launch + time_limit + startup_margin`` and SIGKILLed ``grace``
    seconds later (both executor parameters).  ``None`` disables it —
    shard tasks supervise their own workers and get no outer deadline.
    ``host`` pins the task to a named host slot; only executors with
    named slots (:class:`ShardExecutor`) honor it.
    """

    task_id: str
    argv: tuple[str, ...]
    env: dict | None = None
    cwd: str | None = None
    log_path: str | None = None
    time_limit: float | None = None
    host: str | None = None


@dataclass(frozen=True)
class TaskHandle:
    """What ``submit`` returns: enough to journal the launch durably."""

    task_id: str
    pid: int
    slot: int | str


@dataclass
class TaskExit:
    """One finished task, as reported by ``poll`` or ``drain``."""

    task_id: str
    returncode: int
    slot: int | str
    runtime: float
    #: the watchdog fired (SIGTERM)
    termed: bool = False
    #: the watchdog escalated (SIGKILL)
    killed: bool = False


@runtime_checkable
class Executor(Protocol):
    """Runs tasks as supervised processes; the scheduler stays ignorant
    of *where*."""

    @property
    def capacity(self) -> int:
        """Maximum simultaneously running tasks."""
        ...

    @property
    def running_count(self) -> int:
        ...

    def has_capacity(self, task: ExecutorTask) -> bool:
        """Whether *task* could start right now (slot- or host-aware)."""
        ...

    def submit(self, task: ExecutorTask) -> TaskHandle:
        ...

    def poll(self) -> list[TaskExit]:
        """Collect finished tasks and escalate overdue watchdogs."""
        ...

    def cancel(self, task_id: str, hard: bool = False) -> bool:
        """SIGTERM (or SIGKILL with *hard*) one running task."""
        ...

    def drain(self) -> list[TaskExit]:
        """SIGTERM everything, SIGKILL stragglers after the grace window,
        and return every exit.  Blocks until no task is left running."""
        ...

    def close(self) -> None:
        ...


@dataclass
class _Live:
    """Executor-side state of one running process."""

    task_id: str
    proc: subprocess.Popen
    slot: int | str
    started: float
    #: SIGTERM instant (None = no wall-clock watchdog for this task)
    term_at: float | None
    #: SIGKILL instant
    kill_at: float | None
    termed: bool = False
    killed: bool = False

    def to_exit(self, returncode: int) -> TaskExit:
        return TaskExit(
            task_id=self.task_id,
            returncode=returncode,
            slot=self.slot,
            runtime=time.monotonic() - self.started,
            termed=self.termed,
            killed=self.killed,
        )


class LocalExecutor:
    """The fork-based worker pool, extracted from the PR 3 supervisor.

    *num_workers* slots are allocated lowest-index-first and returned to
    the free list on exit (identical to the pre-refactor supervisor, so
    per-slot utilization accounting is unchanged).  *startup_margin* pads
    every task watchdog for interpreter start-up; *grace* is the
    SIGTERM→SIGKILL escalation window.
    """

    def __init__(
        self,
        num_workers: int = 1,
        grace: float = 2.0,
        startup_margin: float = 1.0,
    ) -> None:
        if num_workers <= 0:
            raise ValueError("num_workers must be positive")
        self.num_workers = num_workers
        self.grace = grace
        self.startup_margin = startup_margin
        self._live: dict[str, _Live] = {}
        self._free_slots: list[int | str] = list(range(num_workers))
        self._closed = False

    # -- capacity ----------------------------------------------------------

    @property
    def capacity(self) -> int:
        return self.num_workers

    @property
    def running_count(self) -> int:
        return len(self._live)

    @property
    def running_ids(self) -> tuple[str, ...]:
        return tuple(self._live)

    def has_capacity(self, task: ExecutorTask) -> bool:  # noqa: ARG002
        return bool(self._free_slots)

    # -- lifecycle ---------------------------------------------------------

    def _spawn_argv(self, task: ExecutorTask, slot: int | str) -> list[str]:
        """The concrete argv for *task* (hook for host wrapping)."""
        del slot
        return list(task.argv)

    def _take_slot(self, task: ExecutorTask) -> int | str:
        return self._free_slots.pop(0)

    def submit(self, task: ExecutorTask) -> TaskHandle:
        if self._closed:
            raise RuntimeError("executor is closed")
        if task.task_id in self._live:
            raise ValueError(f"task {task.task_id!r} is already running")
        if not self.has_capacity(task):
            raise RuntimeError("no free executor slot")
        slot = self._take_slot(task)
        argv = self._spawn_argv(task, slot)
        stderr = subprocess.DEVNULL
        log_fp = None
        if task.log_path is not None:
            log_path = Path(task.log_path)
            log_path.parent.mkdir(parents=True, exist_ok=True)
            log_fp = open(log_path, "ab")
            stderr = log_fp
        try:
            proc = subprocess.Popen(
                argv,
                env=task.env,
                stdout=subprocess.DEVNULL,
                stderr=stderr,
                cwd=task.cwd,
            )
        except Exception:
            self._free_slots.append(slot)
            self._sort_free()
            raise
        finally:
            if log_fp is not None:
                log_fp.close()
        started = time.monotonic()
        term_at = kill_at = None
        if task.time_limit is not None:
            term_at = started + task.time_limit + self.startup_margin
            kill_at = term_at + self.grace
        self._live[task.task_id] = _Live(
            task_id=task.task_id, proc=proc, slot=slot, started=started,
            term_at=term_at, kill_at=kill_at,
        )
        return TaskHandle(task_id=task.task_id, pid=proc.pid, slot=slot)

    def _sort_free(self) -> None:
        try:
            self._free_slots.sort()
        except TypeError:  # mixed named/indexed slots — keep FIFO order
            pass

    def poll(self) -> list[TaskExit]:
        exits: list[TaskExit] = []
        for task_id in list(self._live):
            live = self._live[task_id]
            rc = live.proc.poll()
            if rc is not None:
                del self._live[task_id]
                self._free_slots.append(live.slot)
                self._sort_free()
                exits.append(live.to_exit(rc))
                continue
            now = time.monotonic()
            if live.kill_at is not None and now >= live.kill_at and not live.killed:
                live.proc.kill()
                live.killed = True
            elif live.term_at is not None and now >= live.term_at and not live.termed:
                live.proc.terminate()
                live.termed = True
        return exits

    def cancel(self, task_id: str, hard: bool = False) -> bool:
        live = self._live.get(task_id)
        if live is None:
            return False
        if hard:
            live.proc.kill()
            live.killed = True
        else:
            live.proc.terminate()
            live.termed = True
        return True

    def drain(self) -> list[TaskExit]:
        """Stop everything: SIGTERM at once, SIGKILL after the grace window.

        Identical escalation to the pre-refactor supervisor's drain; the
        caller decides per exit whether the task's work survives (result
        adoption) or is requeued.
        """
        for live in self._live.values():
            if not live.termed:
                live.proc.terminate()
                live.termed = True
        kill_deadline = time.monotonic() + self.grace
        exits: list[TaskExit] = []
        while self._live:
            now = time.monotonic()
            for task_id in list(self._live):
                live = self._live[task_id]
                rc = live.proc.poll()
                if rc is None:
                    if now >= kill_deadline and not live.killed:
                        live.proc.kill()
                        live.killed = True
                    continue
                del self._live[task_id]
                self._free_slots.append(live.slot)
                self._sort_free()
                exits.append(live.to_exit(rc))
            if self._live:
                time.sleep(POLL_INTERVAL)
        return exits

    def close(self) -> None:
        if self._live:
            self.drain()
        self._closed = True


# ----------------------------------------------------------------------
# sharded execution
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class HostSpec:
    """One host of a sweep fleet.

    Without a *template* the task argv runs as a plain local subprocess
    (the "subprocess per host" mode every test and the CI drill use).
    With one, the template tokens are executed instead, with the
    ``{cmd}`` token replaced by the task argv — e.g. ``ssh hostA {cmd}``
    prepends an ssh hop.  A template without ``{cmd}`` has the argv
    appended.
    """

    name: str
    template: tuple[str, ...] | None = None

    def wrap(self, argv: list[str]) -> list[str]:
        if not self.template:
            return list(argv)
        wrapped: list[str] = []
        spliced = False
        for token in self.template:
            if token == "{cmd}":
                wrapped.extend(argv)
                spliced = True
            else:
                wrapped.append(token)
        if not spliced:
            wrapped.extend(argv)
        return wrapped


def parse_hosts(
    value: str | None = None, default_shards: int = 2
) -> list[HostSpec]:
    """The sweep fleet from ``$REPRO_SWEEP_HOSTS`` (or *value*).

    Entries are ``;``-separated (templates contain spaces and commas):
    a bare ``name`` runs shards as local subprocesses, ``name=ssh node7
    {cmd}`` runs them through the given command template.  Unset or
    empty, the fleet defaults to *default_shards* local pseudo-hosts
    named ``h0..hN`` — multi-host semantics, one machine.
    """
    if value is None:
        value = os.environ.get(HOSTS_ENV_VAR, "")
    entries = [entry.strip() for entry in value.split(";") if entry.strip()]
    if not entries:
        return [HostSpec(f"h{i}") for i in range(max(1, default_shards))]
    hosts: list[HostSpec] = []
    seen: set[str] = set()
    for entry in entries:
        name, _, template = entry.partition("=")
        name = name.strip()
        if not name or "/" in name or name != Path(name).name:
            raise ValueError(f"invalid sweep host name {name!r}")
        if name in seen:
            raise ValueError(f"duplicate sweep host {name!r}")
        seen.add(name)
        tokens = tuple(template.split()) if template.strip() else None
        hosts.append(HostSpec(name=name, template=tokens))
    return hosts


class ShardExecutor(LocalExecutor):
    """Runs one task per host slot, through each host's command template.

    The slots are the host *names*; a task with ``host`` set is pinned
    to that slot (a sweep shard must land on the host that owns its
    journal shard), an unpinned task takes any free host.  Everything
    else — watchdog, drain, exits — is inherited.
    """

    def __init__(self, hosts: list[HostSpec], grace: float = 5.0,
                 startup_margin: float = 1.0) -> None:
        if not hosts:
            raise ValueError("ShardExecutor needs at least one host")
        super().__init__(num_workers=len(hosts), grace=grace,
                         startup_margin=startup_margin)
        self.hosts = {host.name: host for host in hosts}
        if len(self.hosts) != len(hosts):
            raise ValueError("duplicate host names in sweep fleet")
        self._free_slots = [host.name for host in hosts]

    def has_capacity(self, task: ExecutorTask) -> bool:
        if task.host is not None:
            return task.host in self._free_slots
        return bool(self._free_slots)

    def _take_slot(self, task: ExecutorTask) -> int | str:
        if task.host is not None:
            if task.host not in self.hosts:
                raise ValueError(f"unknown sweep host {task.host!r}")
            self._free_slots.remove(task.host)
            return task.host
        return self._free_slots.pop(0)

    def _spawn_argv(self, task: ExecutorTask, slot: int | str) -> list[str]:
        return self.hosts[str(slot)].wrap(list(task.argv))

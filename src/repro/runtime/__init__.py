"""Fault-tolerant optimization runtime.

The robustness substrate shared by every layer of the reproduction:

* :mod:`repro.runtime.budget` — wall-clock + conflict budgets shared and
  split across passes;
* :mod:`repro.runtime.verify` — the post-pass equivalence policy
  (exhaustive / sampled simulation, budgeted SAT CEC);
* :mod:`repro.runtime.errors` — the structured exception taxonomy;
* :mod:`repro.runtime.artifacts` — atomic writes, validated loads and
  quarantine for on-disk artifacts;
* :mod:`repro.runtime.faults` — fault injection hooks for testing all of
  the above against real failures.

See ``docs/ROBUSTNESS.md`` for the full model.
"""

from .budget import Budget
from .errors import (
    BudgetExhausted,
    CorruptArtifact,
    ReproRuntimeError,
    VerificationFailed,
)
from .verify import VerificationReport, verify_rewrite

__all__ = [
    "Budget",
    "BudgetExhausted",
    "CorruptArtifact",
    "ReproRuntimeError",
    "VerificationFailed",
    "VerificationReport",
    "verify_rewrite",
]

"""Fault-tolerant optimization runtime.

The robustness substrate shared by every layer of the reproduction:

* :mod:`repro.runtime.budget` — wall-clock + conflict budgets shared and
  split across passes;
* :mod:`repro.runtime.verify` — the post-pass equivalence policy
  (exhaustive / sampled simulation, budgeted SAT CEC);
* :mod:`repro.runtime.errors` — the structured exception taxonomy;
* :mod:`repro.runtime.artifacts` — atomic writes, validated loads and
  quarantine for on-disk artifacts;
* :mod:`repro.runtime.faults` — fault injection hooks for testing all of
  the above against real failures;
* :mod:`repro.runtime.jobs` — batch job specs, the retry/degradation
  ladder, and the crash-recoverable JSONL job journal;
* :mod:`repro.runtime.executors` — the pluggable execution layer: the
  ``Executor`` protocol (submit/poll/cancel/drain), the fork-based
  ``LocalExecutor`` worker pool, and the ``ShardExecutor`` that runs one
  task per (pseudo-)host for distributed sweeps;
* :mod:`repro.runtime.supervisor` — the supervised parallel batch
  runtime: journal-backed scheduling and the retry ladder, executing
  through any ``Executor`` with the hard wall-clock watchdog
  (SIGTERM → grace → SIGKILL);
* :mod:`repro.runtime.sweep` — sharded multi-host sweeps: declarative
  scenario matrices expanded to per-host journal shards, merged
  exactly-once, published as trend rows to ``MATRIX.jsonl``;
* :mod:`repro.runtime.worker` — the worker subprocess entry point
  (``python -m repro.runtime.worker``).

See ``docs/ROBUSTNESS.md`` for the full model.
"""

from .budget import Budget
from .errors import (
    BudgetExhausted,
    CorruptArtifact,
    ReproRuntimeError,
    VerificationFailed,
)
from .executors import (
    Executor,
    ExecutorTask,
    HostSpec,
    LocalExecutor,
    ShardExecutor,
    TaskExit,
    TaskHandle,
    parse_hosts,
)
from .jobs import BatchReport, JobJournal, JobSpec
from .supervisor import Supervisor, run_batch
from .sweep import SweepConflictError, SweepSpec, run_sweep
from .verify import VerificationReport, verify_rewrite

__all__ = [
    "BatchReport",
    "Budget",
    "BudgetExhausted",
    "CorruptArtifact",
    "Executor",
    "ExecutorTask",
    "HostSpec",
    "JobJournal",
    "JobSpec",
    "LocalExecutor",
    "ReproRuntimeError",
    "ShardExecutor",
    "Supervisor",
    "SweepConflictError",
    "SweepSpec",
    "TaskExit",
    "TaskHandle",
    "VerificationFailed",
    "VerificationReport",
    "parse_hosts",
    "run_batch",
    "run_sweep",
    "verify_rewrite",
]

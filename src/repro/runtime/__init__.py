"""Fault-tolerant optimization runtime.

The robustness substrate shared by every layer of the reproduction:

* :mod:`repro.runtime.budget` — wall-clock + conflict budgets shared and
  split across passes;
* :mod:`repro.runtime.verify` — the post-pass equivalence policy
  (exhaustive / sampled simulation, budgeted SAT CEC);
* :mod:`repro.runtime.errors` — the structured exception taxonomy;
* :mod:`repro.runtime.artifacts` — atomic writes, validated loads and
  quarantine for on-disk artifacts;
* :mod:`repro.runtime.faults` — fault injection hooks for testing all of
  the above against real failures;
* :mod:`repro.runtime.jobs` — batch job specs, the retry/degradation
  ladder, and the crash-recoverable JSONL job journal;
* :mod:`repro.runtime.supervisor` — the supervised parallel batch
  runtime: worker-pool scheduling, process isolation, and the hard
  wall-clock watchdog (SIGTERM → grace → SIGKILL);
* :mod:`repro.runtime.worker` — the worker subprocess entry point
  (``python -m repro.runtime.worker``).

See ``docs/ROBUSTNESS.md`` for the full model.
"""

from .budget import Budget
from .errors import (
    BudgetExhausted,
    CorruptArtifact,
    ReproRuntimeError,
    VerificationFailed,
)
from .jobs import BatchReport, JobJournal, JobSpec
from .supervisor import Supervisor, run_batch
from .verify import VerificationReport, verify_rewrite

__all__ = [
    "BatchReport",
    "Budget",
    "BudgetExhausted",
    "CorruptArtifact",
    "JobJournal",
    "JobSpec",
    "ReproRuntimeError",
    "Supervisor",
    "VerificationFailed",
    "VerificationReport",
    "run_batch",
    "verify_rewrite",
]

"""Post-pass equivalence policy: how to check a rewrite did not miscompile.

Every optimization pass in this code base is supposed to be functionality
preserving; this module decides how much evidence to demand, scaled to
the network and to the remaining :class:`~repro.runtime.budget.Budget`:

* **exhaustive simulation** for small PI counts — a complete proof at
  trivial cost (the same path ``check_equivalence`` uses);
* **sampled simulation** first, then **budgeted SAT CEC** via
  :mod:`repro.sat.cec` for wide networks — sampling refutes cheap bugs in
  microseconds, the miter proves equivalence when the budget allows.

:func:`verify_rewrite` returns a :class:`VerificationReport`;
``equivalent`` is ``True`` (proved), ``False`` (refuted, counterexample
attached when known), or ``None`` (budget exhausted before a proof —
sampling passed, so equivalence was at least not refuted).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.mig import Mig
from ..core.simulate import equivalent_exhaustive, equivalent_random
from .budget import Budget

__all__ = ["VerificationReport", "verify_rewrite", "EXHAUSTIVE_PI_LIMIT"]

#: widest network checked by complete simulation (2**16 rows, still < 1 ms)
EXHAUSTIVE_PI_LIMIT = 14


@dataclass(frozen=True)
class VerificationReport:
    """Outcome of one rewrite verification."""

    #: True = proved equivalent, False = refuted, None = inconclusive
    equivalent: bool | None
    #: "exhaustive", "sampled", "cec", or "off"
    method: str
    #: distinguishing input assignment when the check produced one
    counterexample: dict[str, bool] | None = None
    #: CDCL conflicts spent (CEC only)
    conflicts: int = 0
    #: per-lane portfolio fates from the CEC race (empty off portfolio)
    backend_events: dict[str, int] | None = None

    @property
    def refuted(self) -> bool:
        return self.equivalent is False


def verify_rewrite(
    before: Mig,
    after: Mig,
    mode: str = "sim",
    budget: Budget | None = None,
    sample_rounds: int = 16,
    cec_conflict_cap: int = 50_000,
    sat_backend="internal",
) -> VerificationReport:
    """Check that *after* computes the same functions as *before*.

    *mode* selects the policy: ``"off"`` skips verification, ``"sim"``
    uses simulation only (exhaustive when narrow enough, sampled
    otherwise), ``"cec"`` escalates wide networks from sampling to a
    budgeted SAT miter for a definitive answer.

    *sat_backend* (a mode string or a shared
    :class:`~repro.sat.portfolio.PortfolioSolver`) selects which solver
    lanes the CEC miter races; simulation paths ignore it.
    """
    if mode not in ("off", "sim", "cec"):
        raise ValueError(f"unknown verification mode {mode!r}; use off/sim/cec")
    if mode == "off":
        return VerificationReport(None, "off")

    if before.num_pis <= EXHAUSTIVE_PI_LIMIT:
        ok = equivalent_exhaustive(before, after)
        return VerificationReport(ok, "exhaustive")

    # Wide network: cheap refutation first.
    if not equivalent_random(before, after, num_rounds=sample_rounds):
        return VerificationReport(False, "sampled")
    if mode == "sim":
        # Sampling cannot prove equivalence; report inconclusive-positive.
        return VerificationReport(None, "sampled")

    # mode == "cec": budgeted SAT miter.
    from ..sat.cec import check_equivalence_sat

    conflict_budget = (
        budget.call_conflict_budget(cec_conflict_cap)
        if budget is not None
        else cec_conflict_cap
    )
    result = check_equivalence_sat(
        before,
        after,
        conflict_budget=conflict_budget,
        budget=budget,
        sat_backend=sat_backend,
    )
    return VerificationReport(
        result.equivalent,
        "cec",
        counterexample=result.counterexample,
        conflicts=result.conflicts,
        backend_events=result.backend_events or None,
    )

"""``migopt serve`` — hardened optimization-as-a-service on the batch runtime.

A long-lived, stdlib-only HTTP/JSON daemon that turns the supervised
batch runtime (:mod:`repro.runtime.supervisor`) into a serving tier:
requests carry a network (inline BLIF/bench/AIGER-ASCII upload or a
generator spec) plus flow parameters, each request becomes a
:class:`~repro.runtime.jobs.JobSpec` run under its own per-job
supervisor (process isolation, watchdog, retry-with-degradation,
crash-safe journal), and results are memoized in a content-addressed
:class:`~repro.runtime.cache.ResultCache` keyed by the canonical
structural hash of (network, flow, budgets) — the paper's functional
hashing premise applied to whole requests, so duplicate-laden traffic
is absorbed by disk lookups instead of re-optimizations.

API (all JSON)::

    POST /jobs          submit; 200 done-from-cache, 202 accepted,
                        202 coalesced onto an identical in-flight job,
                        429 queue full, 503 draining, 400/413 bad input
    GET  /jobs/<id>     poll: state, per-step progress, result
    GET  /stats         serve + cache counters (hits, evictions, ...)
    GET  /healthz       process liveness (always 200 while alive)
    GET  /readyz        admission readiness (503 while draining)

Robustness properties, each drilled by tests or the CI smoke:

* **admission control** — a bounded queue; requests past it get ``429``
  with a ``Retry-After`` hint instead of unbounded memory growth;
* **deadlines** — a request deadline becomes the worker's in-process
  :class:`~repro.runtime.budget.Budget` (polite partial results) *and*
  the supervisor's SIGTERM→SIGKILL watchdog (impolite workers die); a
  request whose deadline lapses while queued gets a typed ``timeout``
  response, never a hung connection;
* **crash safety** — every accepted request is persisted atomically
  before it is acknowledged, every job state transition lives in the
  PR 3 job journal, and the cache follows the artifact rules, so a
  ``kill -9`` at any instant loses at most work in flight — never
  completed results, and never serves torn bytes.  On restart the
  daemon recovers: finished journals are adopted (exactly-once, no
  re-run), interrupted jobs re-enter the queue;
* **graceful drain** — SIGTERM stops admission (``/readyz`` flips to
  503), running jobs finish (or are journaled resumable after the drain
  grace), queued jobs stay journaled for the next start, a final stats
  snapshot is flushed, and the process exits 0;
* **chaos hooks** — ``serve.crash`` (die right after accepting a
  request) and ``cache.corrupt`` (bad bytes reach the cache) are
  ``REPRO_FAULTS``-injectable fault points for drills.
"""

from __future__ import annotations

import io
import json
import os
import queue
import signal
import threading
import time
import uuid
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path

from .artifacts import atomic_write_text, quarantine
from .cache import ResultCache, request_key
from .executors import LocalExecutor
from .faults import arm_from_env, fault_active
from .jobs import JobJournal, JobSpec
from .supervisor import Supervisor

__all__ = ["OptimizationService", "ServeDaemon", "run_server"]

#: request body cap — a network upload past this is a 413, not an OOM
MAX_BODY_BYTES = 32 * 1024 * 1024

#: non-variant flow steps accepted in scripts (variants come from the
#: rewriting engine at validation time)
_PLAIN_STEPS = ("depth", "depth-fast", "strash", "fraig")

#: exit code of the injected serve.crash fault
CRASH_EXIT_CODE = 86

_STOP = object()


class BadRequest(ValueError):
    """A request the client must fix (maps to HTTP 400)."""


def _load_request_network(network) -> "object":
    """Parse the request's network into an in-memory MIG.

    Accepted forms: ``{"generate": name[, "width": w]}`` for the
    built-in EPFL generators, or an inline text upload under exactly one
    of ``"blif"``, ``"bench"``, ``"aag"`` (ASCII AIGER; converted
    through the AIG facade).  Parsing happens in the daemon because the
    canonical structural hash — the cache key — must be computed before
    any work is scheduled.
    """
    if not isinstance(network, dict):
        raise BadRequest("'network' must be an object")
    kinds = [k for k in ("generate", "blif", "bench", "aag") if k in network]
    if len(kinds) != 1:
        raise BadRequest(
            "network needs exactly one of 'generate', 'blif', 'bench', 'aag'"
        )
    kind = kinds[0]
    try:
        if kind == "generate":
            from ..generators import resolve_generator

            try:
                return resolve_generator(
                    str(network["generate"]),
                    width=(
                        None if network.get("width") is None
                        else int(network["width"])
                    ),
                )
            except ValueError as exc:
                raise BadRequest(str(exc))
        text = network[kind]
        if not isinstance(text, str):
            raise BadRequest(f"'{kind}' upload must be a string")
        if kind == "blif":
            from ..io.blif import read_blif

            return read_blif(io.StringIO(text))
        if kind == "bench":
            from ..io.bench import read_bench

            return read_bench(io.StringIO(text))
        from ..aig.convert import aig_to_mig
        from ..io.aiger import read_aag

        return aig_to_mig(read_aag(io.StringIO(text)))
    except BadRequest:
        raise
    except Exception as exc:  # noqa: BLE001 - client input boundary
        raise BadRequest(f"could not parse {kind} network: {exc}") from exc


def _validate_script(script) -> tuple[str, ...]:
    from ..rewriting.engine import VARIANTS

    if isinstance(script, str):
        script = [s for s in script.split(",") if s]
    if not isinstance(script, (list, tuple)) or not script:
        raise BadRequest("'script' must be a non-empty list of step names")
    steps = []
    for step in script:
        name = str(step).strip()
        if name.upper() not in VARIANTS and name.lower() not in _PLAIN_STEPS:
            raise BadRequest(
                f"unknown flow step {name!r}; variants {list(VARIANTS)} "
                f"or {list(_PLAIN_STEPS)}"
            )
        steps.append(name)
    return tuple(steps)


def _opt_number(request: dict, key: str, cast, minimum=None):
    value = request.get(key)
    if value is None:
        return None
    try:
        value = cast(value)
    except (TypeError, ValueError):
        raise BadRequest(f"'{key}' must be a number") from None
    if minimum is not None and value < minimum:
        raise BadRequest(f"'{key}' must be >= {minimum}")
    return value


@dataclass
class ServeJob:
    """In-memory record of one submitted request."""

    job_id: str
    key: str
    spec: JobSpec
    workdir: Path
    submitted_at: float
    deadline_at: float | None = None
    #: queued | running | done | failed | timeout
    state: str = "queued"
    cached: bool = False
    resume: bool = False
    started_at: float | None = None
    finished_at: float | None = None
    result: dict | None = None
    error: str | None = None
    #: job ids coalesced onto this one (same cache key, still in flight)
    coalesced: int = 0
    lock: threading.Lock = field(default_factory=threading.Lock, repr=False)


class OptimizationService:
    """The daemon's engine: admission, scheduling, caching, recovery.

    Separable from the HTTP layer so tests can drive it directly.  The
    on-disk layout under *workdir*::

        cache/objects/<key>.json      the content-addressed result cache
        jobs/<job_id>/request.json    the accepted request (atomic write)
        jobs/<job_id>/input.blif      materialized upload, when any
        jobs/<job_id>/progress.jsonl  per-step progress from the worker
        jobs/<job_id>/super/          the per-job supervisor workdir
                                      (journal.jsonl, specs/, results/)
        stats.json                    final snapshot flushed on drain
    """

    def __init__(
        self,
        workdir: str | Path,
        num_workers: int = 2,
        queue_limit: int = 16,
        cache_max_bytes: int | None = None,
        max_attempts: int = 2,
        grace: float = 2.0,
        default_time_limit: float | None = None,
        default_verify: str = "sim",
        mem_limit_mb: int | None = None,
        default_cut_size: int | None = None,
        npn_store: str | Path | None = None,
        verbose: bool = False,
    ) -> None:
        if num_workers < 0:
            raise ValueError("num_workers must be >= 0")
        if queue_limit <= 0:
            raise ValueError("queue_limit must be positive")
        if default_verify not in ("off", "sim", "cec"):
            raise ValueError("default_verify must be off/sim/cec")
        if default_cut_size is not None and default_cut_size not in (4, 5, 6):
            raise ValueError("default_cut_size must be 4, 5, or 6")
        self.workdir = Path(workdir)
        self.jobs_dir = self.workdir / "jobs"
        self.jobs_dir.mkdir(parents=True, exist_ok=True)
        self.cache = ResultCache(self.workdir / "cache", max_bytes=cache_max_bytes)
        self.num_workers = num_workers
        self.queue_limit = queue_limit
        self.max_attempts = max_attempts
        self.grace = grace
        self.default_time_limit = default_time_limit
        self.default_verify = default_verify
        self.mem_limit_mb = mem_limit_mb
        self.default_cut_size = default_cut_size
        self.npn_store = None if npn_store is None else str(npn_store)
        self.verbose = verbose

        self._queue: "queue.Queue" = queue.Queue()
        self._queued = 0
        self._running = 0
        self._lock = threading.Lock()
        self._idle = threading.Condition(self._lock)
        self.jobs: dict[str, ServeJob] = {}
        self._by_key: dict[str, str] = {}
        self._active_supervisors: dict[str, Supervisor] = {}
        self.draining = threading.Event()
        self.started_at = time.time()
        self.counters = {
            "submitted": 0,
            "completed": 0,
            "failed": 0,
            "timeout": 0,
            "cache_hits": 0,
            "coalesced": 0,
            "rejected": 0,
            "recovered": 0,
            "adopted": 0,
        }
        #: NPN-store tier counters aggregated from completed job metrics
        #: (the store itself lives in the worker subprocesses)
        self.store_counters = {
            "store_hits": 0,
            "store_disk_hits": 0,
            "store_synth": 0,
            "store_evictions": 0,
        }
        self._threads: list[threading.Thread] = []

    # -- lifecycle --------------------------------------------------------

    def start(self) -> None:
        """Recover persisted jobs, then start the runner pool."""
        self._recover()
        for i in range(self.num_workers):
            thread = threading.Thread(
                target=self._runner_loop, name=f"serve-runner-{i}", daemon=True
            )
            thread.start()
            self._threads.append(thread)

    def close(self) -> None:
        """Stop the runner pool and flush the final stats snapshot."""
        for _ in self._threads:
            self._queue.put(_STOP)
        for thread in self._threads:
            thread.join(timeout=10.0)
        try:
            atomic_write_text(
                self.workdir / "stats.json",
                json.dumps(self.stats(), sort_keys=True) + "\n",
            )
        except OSError:
            pass

    # -- recovery ---------------------------------------------------------

    def _recover(self) -> None:
        """Rebuild job state from disk after a restart (exactly-once).

        Each persisted ``request.json`` is replayed against its job's
        supervisor journal: a terminal journal reinstates the outcome
        without re-running anything (and back-fills the cache if the
        crash hit between completion and the cache write); anything else
        re-enters the queue with ``resume=True`` so the supervisor's own
        resume logic — including adopting an already-written result
        artifact — guarantees the job completes exactly once.
        """
        if not self.jobs_dir.exists():
            return
        for jobdir in sorted(self.jobs_dir.iterdir()):
            req_path = jobdir / "request.json"
            if not jobdir.is_dir() or not req_path.exists():
                continue
            try:
                with open(req_path, "r", encoding="utf-8") as fp:
                    req = json.load(fp)
                job_id = str(req["job_id"])
                key = str(req["key"])
                spec = JobSpec.from_dict(req["spec"])
            except (ValueError, KeyError, TypeError, OSError):
                quarantine(req_path)
                continue
            job = ServeJob(
                job_id=job_id,
                key=key,
                spec=spec,
                workdir=jobdir,
                submitted_at=float(req.get("submitted_at", time.time())),
                deadline_at=req.get("deadline_at"),
            )
            replay_record = None
            journal_path = jobdir / "super" / "journal.jsonl"
            if journal_path.exists():
                replay = JobJournal.replay(journal_path)
                replay_record = replay.records.get(job_id)
            if replay_record is not None and replay_record.state == "done":
                self._finalize_done(job, replay_record.result or {}, recovered=True)
            elif replay_record is not None and replay_record.state == "quarantined":
                self._finalize_failed(
                    job, replay_record.last_error or "quarantined", recovered=True
                )
            else:
                job.resume = journal_path.exists()
                with self._lock:
                    self.jobs[job_id] = job
                    self._by_key.setdefault(key, job_id)
                    self._queued += 1
                    self.counters["recovered"] += 1
                self._queue.put(job)
            if self.verbose:
                print(f"[serve] recovered {job_id} -> {job.state}")

    # -- admission --------------------------------------------------------

    def submit(self, request: dict) -> tuple[int, dict]:
        """Admit one request; returns ``(http_status, response_payload)``."""
        if self.draining.is_set():
            return 503, {"error": "draining", "detail": "daemon is shutting down"}
        if not isinstance(request, dict):
            return 400, {"error": "bad-request", "detail": "body must be a JSON object"}
        try:
            mig = _load_request_network(request.get("network"))
            spec_fields = self._spec_fields(request)
        except BadRequest as exc:
            return 400, {"error": "bad-request", "detail": str(exc)}

        structural = mig.structural_hash()
        probe = JobSpec(job_id="probe", network={}, **spec_fields)
        key = request_key(structural, probe)

        cached = self.cache.get(key)
        if cached is not None:
            job_id = f"{key[:12]}-hit-{uuid.uuid4().hex[:8]}"
            job = ServeJob(
                job_id=job_id,
                key=key,
                spec=probe,
                workdir=self.jobs_dir / job_id,
                submitted_at=time.time(),
                state="done",
                cached=True,
                result=cached,
                finished_at=time.time(),
            )
            with self._lock:
                self.jobs[job_id] = job
                self.counters["submitted"] += 1
                self.counters["cache_hits"] += 1
            return 200, {
                "job_id": job_id,
                "status": "done",
                "cached": True,
                "cache_key": key,
                "result": cached,
            }

        with self._lock:
            active_id = self._by_key.get(key)
            if active_id is not None:
                active = self.jobs.get(active_id)
                if active is not None and active.state in ("queued", "running"):
                    active.coalesced += 1
                    self.counters["submitted"] += 1
                    self.counters["coalesced"] += 1
                    return 202, {
                        "job_id": active_id,
                        "status": active.state,
                        "coalesced": True,
                        "cache_key": key,
                        "poll": f"/jobs/{active_id}",
                    }
            if self._queued >= self.queue_limit:
                self.counters["rejected"] += 1
                return 429, {
                    "error": "queue-full",
                    "detail": f"{self._queued} jobs already queued",
                    "retry_after": 1,
                }

        job_id = f"{key[:12]}-{uuid.uuid4().hex[:8]}"
        jobdir = self.jobs_dir / job_id
        jobdir.mkdir(parents=True)
        network = request["network"]
        locator = dict(network)
        for kind, suffix in (("blif", ".blif"), ("bench", ".bench")):
            if kind in network:
                upload = jobdir / f"input{suffix}"
                atomic_write_text(upload, network[kind])
                locator = {kind: str(upload)}
        if "aag" in network:
            # The worker reads BLIF/bench only; persist the parsed MIG.
            from ..io.blif import write_blif

            buf = io.StringIO()
            write_blif(mig, buf)
            upload = jobdir / "input.blif"
            atomic_write_text(upload, buf.getvalue())
            locator = {"blif": str(upload)}

        now = time.time()
        deadline = _opt_number(request, "deadline", float, minimum=0.0)
        spec = JobSpec(
            job_id=job_id,
            network=locator,
            output=str(jobdir / "result.blif"),
            progress=str(jobdir / "progress.jsonl"),
            **spec_fields,
        )
        job = ServeJob(
            job_id=job_id,
            key=key,
            spec=spec,
            workdir=jobdir,
            submitted_at=now,
            deadline_at=None if deadline is None else now + deadline,
        )
        # Persist before acknowledging: an accepted request survives any
        # crash from this line on (the recovery scan re-queues it).
        atomic_write_text(
            jobdir / "request.json",
            json.dumps(
                {
                    "job_id": job_id,
                    "key": key,
                    "structural_hash": structural,
                    "spec": spec.to_dict(),
                    "submitted_at": now,
                    "deadline_at": job.deadline_at,
                },
                sort_keys=True,
            )
            + "\n",
        )
        if fault_active("serve.crash"):
            # Chaos hook: die between accepting a request and running it.
            os._exit(CRASH_EXIT_CODE)
        with self._lock:
            self.jobs[job_id] = job
            self._by_key[key] = job_id
            self._queued += 1
            self.counters["submitted"] += 1
        self._queue.put(job)
        return 202, {
            "job_id": job_id,
            "status": "queued",
            "cache_key": key,
            "poll": f"/jobs/{job_id}",
        }

    def _spec_fields(self, request: dict) -> dict:
        mode = str(request.get("mode", "flow"))
        if mode not in ("flow", "converge"):
            raise BadRequest("'mode' must be 'flow' or 'converge'")
        verify = str(request.get("verify", self.default_verify))
        if verify not in ("off", "sim", "cec"):
            raise BadRequest("'verify' must be 'off', 'sim', or 'cec'")
        script = _validate_script(request.get("script", ["BF"]))
        variant = str(request.get("variant", "BF"))
        if mode == "converge":
            _validate_script([variant])
        deadline = _opt_number(request, "deadline", float, minimum=0.0)
        time_limit = _opt_number(request, "time_limit", float, minimum=0.0)
        if deadline is not None:
            time_limit = deadline if time_limit is None else min(time_limit, deadline)
        if time_limit is None:
            time_limit = self.default_time_limit
        cut_size = _opt_number(request, "cut_size", int)
        if cut_size is None:
            cut_size = self.default_cut_size
        if cut_size is not None and cut_size not in (4, 5, 6):
            raise BadRequest("'cut_size' must be 4, 5, or 6")
        return {
            "script": script,
            "mode": mode,
            "variant": variant,
            "max_passes": _opt_number(request, "max_passes", int, minimum=1) or 10,
            "verify": verify,
            "time_limit": time_limit,
            "conflict_limit": _opt_number(request, "conflict_limit", int, minimum=1),
            "cut_limit": _opt_number(request, "cut_limit", int, minimum=2),
            "cut_size": cut_size,
            # The store is daemon configuration, never client input: a
            # request must not be able to point workers at arbitrary
            # filesystem paths.
            "npn_store": (
                self.npn_store if cut_size is not None and cut_size > 4 else None
            ),
            "mem_limit_mb": self.mem_limit_mb,
        }

    # -- running ----------------------------------------------------------

    def _runner_loop(self) -> None:
        while True:
            job = self._queue.get()
            if job is _STOP:
                return
            try:
                self._run_job(job)
            except Exception as exc:  # noqa: BLE001 - runner must survive
                self._finalize_failed(job, f"runner error: {type(exc).__name__}: {exc}")

    def _run_job(self, job: ServeJob) -> None:
        with self._lock:
            self._queued = max(0, self._queued - 1)
            if job.state != "queued":
                # Already finalized (e.g. a poll noticed the deadline
                # lapsed) — never resurrect a terminal job.
                return
            if self.draining.is_set():
                # Leave the job persisted and queued on disk; the next
                # start recovers it.  Drain means "stop working", not
                # "forget accepted work".
                return
            if job.deadline_at is not None and time.time() >= job.deadline_at:
                pass  # finalized below, outside the lock
            else:
                job.state = "running"
                job.started_at = time.time()
                self._running += 1
        if job.state != "running":
            self._finalize_timeout(job, "deadline expired while queued")
            return

        # The daemon routes through the same executor layer as batch and
        # sweep; the explicit LocalExecutor is owned here, reused across
        # the resume retry, and closed when the job settles.
        executor = LocalExecutor(num_workers=1, grace=self.grace)
        supervisor = Supervisor(
            job.workdir / "super",
            num_workers=1,
            grace=self.grace,
            max_attempts=self.max_attempts,
            backoff_base=0.1,
            default_time_limit=self.default_time_limit,
            executor=executor,
        )
        with self._lock:
            self._active_supervisors[job.job_id] = supervisor
        try:
            report = supervisor.run([job.spec], resume=job.resume)
        except FileExistsError:
            report = supervisor.run([job.spec], resume=True)
        finally:
            executor.close()
            with self._lock:
                self._active_supervisors.pop(job.job_id, None)
                self._running = max(0, self._running - 1)
                self._idle.notify_all()

        summary = next(
            (entry for entry in report.jobs if entry.get("job_id") == job.job_id),
            None,
        )
        if report.interrupted and (summary is None or summary.get("state") != "done"):
            # Drained mid-run: the journal holds a resumable state.
            with self._lock:
                job.state = "queued"
                job.resume = True
            return
        if summary is not None and summary.get("state") == "done":
            self._finalize_done(job, summary)
            return
        error = (summary or {}).get("error") or "job did not complete"
        overdue = job.deadline_at is not None and time.time() >= job.deadline_at
        if "watchdog" in str(error) or overdue:
            self._finalize_timeout(job, str(error))
        else:
            self._finalize_failed(job, str(error))

    # -- outcomes ---------------------------------------------------------

    def _result_payload(self, job: ServeJob, summary: dict) -> dict:
        result = {
            key: summary[key]
            for key in (
                "size_before", "size_after", "depth_before", "depth_after",
                "runtime", "verify", "steps", "metrics",
            )
            if key in summary
        }
        result["cache_key"] = job.key
        blif_path = job.workdir / "result.blif"
        if blif_path.exists():
            try:
                result["blif"] = blif_path.read_text(encoding="utf-8")
            except OSError:
                pass
        return result

    @staticmethod
    def _fully_optimized(result: dict) -> bool:
        """Only complete, per-step-verified results are cache-worthy.

        A partial result (a step timed out, failed, or was rolled back)
        is still correct — verification guarantees equivalence — but
        caching it would pin a degraded answer under a key that promises
        the full flow, so it is served once and not memoized.
        """
        steps = result.get("steps") or []
        return bool(steps) and all(s.get("status") == "ok" for s in steps)

    def _finalize_done(
        self, job: ServeJob, summary: dict, recovered: bool = False
    ) -> None:
        result = self._result_payload(job, summary)
        metrics = result.get("metrics") or {}
        with self._lock:
            job.state = "done"
            job.result = result
            job.finished_at = time.time()
            self.jobs[job.job_id] = job
            if self._by_key.get(job.key) == job.job_id:
                del self._by_key[job.key]
            self.counters["completed"] += 1
            if recovered:
                self.counters["adopted"] += 1
            for key in self.store_counters:
                try:
                    self.store_counters[key] += int(metrics.get(key, 0) or 0)
                except (TypeError, ValueError):
                    pass
            self._idle.notify_all()
        if job.spec.verify != "off" and self._fully_optimized(result):
            if self.cache.get(job.key) is None:
                self.cache.put(job.key, result)

    def _finalize_failed(
        self, job: ServeJob, error: str, recovered: bool = False
    ) -> None:
        with self._lock:
            job.state = "failed"
            job.error = error
            job.finished_at = time.time()
            self.jobs[job.job_id] = job
            if self._by_key.get(job.key) == job.job_id:
                del self._by_key[job.key]
            self.counters["failed"] += 1
            self._idle.notify_all()

    def _finalize_timeout(self, job: ServeJob, error: str) -> None:
        with self._lock:
            job.state = "timeout"
            job.error = error
            job.finished_at = time.time()
            if self._by_key.get(job.key) == job.job_id:
                del self._by_key[job.key]
            self.counters["timeout"] += 1
            self._idle.notify_all()

    # -- polling ----------------------------------------------------------

    def job_status(self, job_id: str) -> tuple[int, dict]:
        with self._lock:
            job = self.jobs.get(job_id)
        if job is None:
            return 404, {"error": "unknown-job", "job_id": job_id}
        if (
            job.state == "queued"
            and job.deadline_at is not None
            and time.time() >= job.deadline_at
        ):
            # Typed timeout even if no runner ever picked the job up.
            self._finalize_timeout(job, "deadline expired while queued")
        payload = {
            "job_id": job.job_id,
            "status": job.state,
            "cached": job.cached,
            "cache_key": job.key,
            "submitted_at": job.submitted_at,
            "deadline_at": job.deadline_at,
            "coalesced": job.coalesced,
        }
        progress = self._read_progress(job)
        if progress:
            payload["progress"] = progress
        if job.result is not None:
            payload["result"] = job.result
        if job.error is not None:
            payload["error"] = job.error
        return 200, payload

    @staticmethod
    def _read_progress(job: ServeJob) -> list[dict]:
        """Parse the worker's progress feed (torn tail tolerated)."""
        path = job.workdir / "progress.jsonl"
        events: list[dict] = []
        try:
            with open(path, "r", encoding="utf-8") as fp:
                for line in fp:
                    try:
                        event = json.loads(line)
                    except ValueError:
                        continue
                    if isinstance(event, dict):
                        events.append(event)
        except OSError:
            return []
        return events

    # -- observability ----------------------------------------------------

    def stats(self) -> dict:
        with self._lock:
            jobs = dict(self.counters)
            jobs["queued"] = self._queued
            jobs["running"] = self._running
            store = dict(self.store_counters)
        store["path"] = self.npn_store
        return {
            "uptime_seconds": round(time.time() - self.started_at, 3),
            "draining": self.draining.is_set(),
            "queue_limit": self.queue_limit,
            "workers": self.num_workers,
            "jobs": jobs,
            "cache": self.cache.stats(),
            "npn_store": store,
        }

    # -- drain ------------------------------------------------------------

    def initiate_drain(self) -> None:
        """Stop admitting; ``/readyz`` flips to 503 immediately."""
        self.draining.set()

    def drain(self, timeout: float | None = None) -> bool:
        """Wait for in-flight jobs to finish; journal stragglers.

        Returns True when everything finished within *timeout*; False
        when the drain grace expired and still-running supervisors were
        asked to shut down (their jobs are journaled resumable — nothing
        is lost, the next start picks them up).
        """
        self.initiate_drain()
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._idle:
            while self._running:
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        break
                self._idle.wait(timeout=remaining)
            clean = self._running == 0
        if not clean:
            with self._lock:
                supervisors = list(self._active_supervisors.values())
            for supervisor in supervisors:
                supervisor.request_shutdown()
            with self._idle:
                while self._running:
                    self._idle.wait(timeout=1.0)
        return clean


# ---------------------------------------------------------------------------
# HTTP layer
# ---------------------------------------------------------------------------


class _Handler(BaseHTTPRequestHandler):
    """Routes requests into the :class:`OptimizationService`."""

    service: OptimizationService  # injected by ServeDaemon
    verbose = False
    protocol_version = "HTTP/1.1"

    def log_message(self, fmt, *args):  # noqa: D102 - quiet by default
        if self.verbose:
            BaseHTTPRequestHandler.log_message(self, fmt, *args)

    def _send(self, code: int, payload: dict, extra_headers=()) -> None:
        body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in extra_headers:
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        if path == "/healthz":
            self._send(200, {"status": "ok"})
        elif path == "/readyz":
            if self.service.draining.is_set():
                self._send(503, {"status": "draining"})
            else:
                self._send(200, {"status": "ready"})
        elif path == "/stats":
            self._send(200, self.service.stats())
        elif path.startswith("/jobs/"):
            job_id = path[len("/jobs/"):]
            code, payload = self.service.job_status(job_id)
            self._send(code, payload)
        else:
            self._send(404, {"error": "not-found", "path": path})

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        path = self.path.split("?", 1)[0].rstrip("/")
        if path != "/jobs":
            self._send(404, {"error": "not-found", "path": path})
            return
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            self._send(400, {"error": "bad-request", "detail": "bad Content-Length"})
            return
        if length > MAX_BODY_BYTES:
            self._send(413, {"error": "too-large", "limit_bytes": MAX_BODY_BYTES})
            return
        try:
            body = self.rfile.read(length)
            request = json.loads(body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError, OSError):
            self._send(400, {"error": "bad-request", "detail": "body is not JSON"})
            return
        code, payload = self.service.submit(request)
        headers = ()
        if code == 429:
            headers = (("Retry-After", str(payload.get("retry_after", 1))),)
        self._send(code, payload, headers)


class ServeDaemon:
    """A :class:`ThreadingHTTPServer` bound to an :class:`OptimizationService`."""

    def __init__(
        self, service: OptimizationService, host: str = "127.0.0.1", port: int = 0,
        verbose: bool = False,
    ) -> None:
        handler = type(
            "BoundHandler", (_Handler,), {"service": service, "verbose": verbose}
        )
        self.service = service
        self.httpd = ThreadingHTTPServer((host, port), handler)
        self.httpd.daemon_threads = True
        self._thread: threading.Thread | None = None

    @property
    def address(self) -> tuple[str, int]:
        return self.httpd.server_address[:2]

    @property
    def port(self) -> int:
        return self.httpd.server_address[1]

    def start(self) -> None:
        self.service.start()
        self._thread = threading.Thread(
            target=self.httpd.serve_forever, name="serve-http", daemon=True
        )
        self._thread.start()

    def stop(self, drain_grace: float | None = None) -> bool:
        """Drain the service, stop the listener; True on a clean drain."""
        clean = self.service.drain(timeout=drain_grace)
        self.httpd.shutdown()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
        self.httpd.server_close()
        self.service.close()
        return clean


def run_server(
    workdir: str | Path,
    host: str = "127.0.0.1",
    port: int = 8731,
    num_workers: int = 2,
    queue_limit: int = 16,
    cache_max_bytes: int | None = None,
    max_attempts: int = 2,
    grace: float = 2.0,
    default_time_limit: float | None = None,
    default_verify: str = "sim",
    mem_limit_mb: int | None = None,
    default_cut_size: int | None = None,
    npn_store: str | Path | None = None,
    drain_grace: float = 30.0,
    verbose: bool = False,
) -> int:
    """Blocking entry point behind ``migopt serve``.

    Runs until SIGTERM/SIGINT, then drains: admission stops, in-flight
    jobs get *drain_grace* seconds to finish (stragglers are journaled
    resumable), the stats snapshot is flushed, and the process exits 0.
    """
    arm_from_env()
    service = OptimizationService(
        workdir,
        num_workers=num_workers,
        queue_limit=queue_limit,
        cache_max_bytes=cache_max_bytes,
        max_attempts=max_attempts,
        grace=grace,
        default_time_limit=default_time_limit,
        default_verify=default_verify,
        mem_limit_mb=mem_limit_mb,
        default_cut_size=default_cut_size,
        npn_store=npn_store,
        verbose=verbose,
    )
    daemon = ServeDaemon(service, host, port, verbose=verbose)
    stop = threading.Event()

    def _handle(signum, frame):  # noqa: ARG001 - signal API
        stop.set()

    previous = {}
    for sig in (signal.SIGTERM, signal.SIGINT):
        previous[sig] = signal.signal(sig, _handle)
    try:
        daemon.start()
        bound_host, bound_port = daemon.address
        print(
            f"migopt serve: listening on http://{bound_host}:{bound_port} "
            f"(workdir {service.workdir}, {num_workers} workers, "
            f"queue limit {queue_limit})",
            flush=True,
        )
        stop.wait()
        print("migopt serve: draining...", flush=True)
        clean = daemon.stop(drain_grace=drain_grace)
        print(
            "migopt serve: drained "
            + ("cleanly" if clean else "with journaled stragglers"),
            flush=True,
        )
    finally:
        for sig, handler in previous.items():
            try:
                signal.signal(sig, handler)
            except (ValueError, OSError):
                pass
    return 0

"""Structured exception taxonomy for the fault-tolerant runtime.

Every recoverable failure mode of the optimization pipeline maps onto one
of three exception families, so callers (most importantly
:func:`repro.opt.flow.run_flow`) can implement precise policies instead of
catching bare ``Exception``:

* :class:`BudgetExhausted` — a shared :class:`repro.runtime.budget.Budget`
  ran out of wall-clock time or SAT conflicts.  Anytime algorithms raise
  (or return partial results flagged unproven) instead of hanging.
* :class:`VerificationFailed` — a pass produced a network that is *not*
  functionally equivalent to its input.  Carries the counterexample when
  one is known.
* :class:`CorruptArtifact` — an on-disk artifact (``.npy`` cache, NPN
  JSONL database, checkpoint) failed to load or failed validation.  The
  loading helpers quarantine the bad file and regenerate where possible;
  this exception is raised only when regeneration is impossible.
"""

from __future__ import annotations

__all__ = [
    "ReproRuntimeError",
    "BudgetExhausted",
    "VerificationFailed",
    "CorruptArtifact",
]


class ReproRuntimeError(Exception):
    """Base class of all structured runtime errors."""


class BudgetExhausted(ReproRuntimeError):
    """A shared time/conflict budget ran out before the work completed.

    ``kind`` is ``"time"`` or ``"conflicts"``; ``where`` names the pass or
    call site that hit the limit.
    """

    def __init__(self, kind: str, where: str = "", detail: str = "") -> None:
        self.kind = kind
        self.where = where
        self.detail = detail
        msg = f"{kind} budget exhausted"
        if where:
            msg += f" in {where}"
        if detail:
            msg += f" ({detail})"
        super().__init__(msg)


class VerificationFailed(ReproRuntimeError):
    """A rewrite produced a functionally different network.

    ``counterexample`` maps PI names to boolean values when a concrete
    distinguishing input is known (SAT CEC or sampled simulation), and is
    ``None`` for exhaustive-simulation mismatches where no single pattern
    was isolated.
    """

    def __init__(
        self,
        step: str = "",
        method: str = "",
        counterexample: dict[str, bool] | None = None,
    ) -> None:
        self.step = step
        self.method = method
        self.counterexample = counterexample
        msg = "rewrite verification failed"
        if step:
            msg += f" after step {step!r}"
        if method:
            msg += f" [{method}]"
        if counterexample is not None:
            msg += f"; counterexample {counterexample}"
        super().__init__(msg)


class CorruptArtifact(ReproRuntimeError):
    """An on-disk artifact is unreadable or failed validation.

    ``path`` locates the artifact; ``quarantined_to`` is set when the bad
    file was moved aside rather than deleted.
    """

    def __init__(
        self, path: str, reason: str = "", quarantined_to: str | None = None
    ) -> None:
        self.path = str(path)
        self.reason = reason
        self.quarantined_to = quarantined_to
        msg = f"corrupt artifact {self.path}"
        if reason:
            msg += f": {reason}"
        if quarantined_to:
            msg += f" (quarantined to {quarantined_to})"
        super().__init__(msg)

"""Shared wall-clock / conflict budgets for anytime optimization.

The SAT-backed passes (exact synthesis, fraiging, CEC) are all *anytime*:
they can stop early and report what they have.  What the seed code base
lacked was a way to make several passes share one limit — a flow script
given 2 seconds must not let its first step spend all of them.  The
:class:`Budget` object carries both resources:

* a **wall-clock deadline** (absolute ``time.monotonic()`` instant), and
* a **conflict budget** (total CDCL conflicts across all SAT calls).

Either may be ``None`` (unlimited).  A budget is *charged* as work
happens and can be *split* into child budgets for sub-tasks; children
share the parent's deadline but receive a slice of the remaining
conflicts.  All SAT entry points accept a budget and translate it into
their native per-call limits.

>>> from repro.runtime.budget import Budget
>>> b = Budget.from_limits(time_limit=2.0, conflict_limit=10_000)
>>> b.expired()
False
>>> b.charge_conflicts(4_000); b.remaining_conflicts()
6000
"""

from __future__ import annotations

import threading
import time
from typing import Callable

from .errors import BudgetExhausted

__all__ = ["Budget"]


class Budget:
    """A shared, chargeable wall-clock + conflict budget.

    Instances are mutable on purpose: passes charge the *same* object so
    later passes see what earlier ones spent.  ``clock`` is injectable for
    deterministic tests.
    """

    def __init__(
        self,
        deadline: float | None = None,
        conflict_limit: int | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.deadline = deadline
        self.conflict_limit = conflict_limit
        self.conflicts_spent = 0
        self._clock = clock
        # Charges may arrive from several threads (split() children driven
        # by concurrent workers); a bare += on an attribute is not atomic.
        self._charge_lock = threading.Lock()

    @classmethod
    def from_limits(
        cls,
        time_limit: float | None = None,
        conflict_limit: int | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> "Budget":
        """Build a budget from relative limits (seconds from now)."""
        deadline = None if time_limit is None else clock() + time_limit
        return cls(deadline=deadline, conflict_limit=conflict_limit, clock=clock)

    @classmethod
    def unlimited(cls) -> "Budget":
        """A budget that never expires (for uniform call sites)."""
        return cls()

    # -- queries -----------------------------------------------------------

    def remaining_time(self) -> float | None:
        """Seconds until the deadline (``None`` when untimed, >= 0)."""
        if self.deadline is None:
            return None
        return max(0.0, self.deadline - self._clock())

    def remaining_conflicts(self) -> int | None:
        """Conflicts left to spend (``None`` when unlimited, >= 0)."""
        if self.conflict_limit is None:
            return None
        return max(0, self.conflict_limit - self.conflicts_spent)

    def time_expired(self) -> bool:
        return self.deadline is not None and self._clock() >= self.deadline

    def conflicts_expired(self) -> bool:
        return (
            self.conflict_limit is not None
            and self.conflicts_spent >= self.conflict_limit
        )

    def expired(self) -> bool:
        """True when either resource ran out."""
        return self.time_expired() or self.conflicts_expired()

    # -- charging ----------------------------------------------------------

    def charge_conflicts(self, count: int) -> None:
        """Record *count* CDCL conflicts spent against this budget.

        Thread-safe: children created by :meth:`split` may charge from
        concurrent workers, and every charge must reach the shared total.
        """
        if count < 0:
            raise ValueError("cannot charge a negative conflict count")
        with self._charge_lock:
            self.conflicts_spent += count

    def check(self, where: str = "") -> None:
        """Raise :class:`BudgetExhausted` if the budget is spent."""
        if self.time_expired():
            raise BudgetExhausted("time", where)
        if self.conflicts_expired():
            raise BudgetExhausted("conflicts", where)

    # -- per-call translation ---------------------------------------------

    def call_conflict_budget(self, cap: int | None = None) -> int | None:
        """Conflict budget to hand one SAT call.

        The remaining shared conflicts, optionally capped by the caller's
        own per-call default.  Returns at least 1 when a limit exists so a
        fully spent budget makes the solver return UNKNOWN immediately
        rather than tripping a zero-means-unlimited convention.
        """
        remaining = self.remaining_conflicts()
        if remaining is None:
            return cap
        if cap is not None:
            remaining = min(remaining, cap)
        return max(1, remaining)

    # -- splitting ---------------------------------------------------------

    def split(self, parts: int) -> list["Budget"]:
        """Divide the *remaining* conflicts into *parts* child budgets.

        Children share this budget's absolute deadline (wall-clock time is
        a global resource; splitting it would under-use slack left by fast
        siblings) but receive disjoint, linked conflict slices: charging a
        child also charges this parent.
        """
        if parts <= 0:
            raise ValueError("parts must be positive")
        remaining = self.remaining_conflicts()
        children = []
        for i in range(parts):
            if remaining is None:
                slice_ = None
            else:
                slice_ = remaining // parts + (1 if i < remaining % parts else 0)
            children.append(_ChildBudget(self, slice_))
        return children


class _ChildBudget(Budget):
    """A conflict slice of a parent budget sharing the parent deadline."""

    def __init__(self, parent: Budget, conflict_limit: int | None) -> None:
        super().__init__(
            deadline=parent.deadline,
            conflict_limit=conflict_limit,
            clock=parent._clock,
        )
        self._parent = parent

    def charge_conflicts(self, count: int) -> None:
        super().charge_conflicts(count)
        self._parent.charge_conflicts(count)

    def time_expired(self) -> bool:
        # The parent's deadline may have been tightened after the split.
        self.deadline = self._parent.deadline
        return super().time_expired()

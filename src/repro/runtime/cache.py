"""Crash-safe, content-addressed result cache for the serving tier.

The paper's premise — functional hashing makes logically-identical
subproblems canonical and therefore cacheable — extended to whole
requests: a request is keyed by the canonical structural hash of its
network (:meth:`repro.core.kernel.Network.structural_hash`) combined
with every optimization-relevant job parameter (:func:`request_key`),
so the millions-of-users duplicate-submission case is a disk lookup, not
a re-optimization.

Every byte on disk follows the PR 1 artifact rules:

* **writes are atomic** — an entry is a single JSON file written through
  :func:`repro.runtime.artifacts.atomic_write_text`, so a ``kill -9``
  mid-write leaves either the previous entry or none, never a torn one;
* **loads are validated** — an entry must parse, be a dict, carry its
  own key and a result payload; anything else is *quarantined*
  (``<name>.corrupt`` next to the original) and reported as a miss, so
  a corrupt entry costs one re-optimization, never a wrong answer;
* **no in-memory state is authoritative** — the cache is rebuilt from a
  directory scan on open, so the daemon restarts warm after any crash.

Recency for the LRU bound rides on file mtimes: a hit touches the entry,
eviction removes oldest-first until ``max_bytes`` is respected.  That
keeps recency crash-safe for free (the filesystem persists it) at the
cost of coarse granularity, which is fine for an eviction heuristic.

Fault point ``cache.corrupt`` (see :mod:`repro.runtime.faults`): an
armed :meth:`ResultCache.put` writes deliberately truncated garbage in
place of the entry, modeling bad bytes reaching disk (torn block, bit
rot) so chaos drills can watch the quarantine path fire end-to-end.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import time
from pathlib import Path

from .artifacts import atomic_write_text, quarantine
from .faults import fault_active
from .jobs import JobSpec

__all__ = ["ResultCache", "request_key"]

#: entry schema version; bumping it invalidates (quarantines) old entries
_ENTRY_VERSION = 1


def request_key(structural_hash: str, spec: JobSpec) -> str:
    """Content-addressed cache key for one optimization request.

    Combines the canonical structural hash of the network with every
    spec field that can change the result: the flow script, mode,
    variant and pass bound, the verification policy, the time/conflict/
    cut budgets, and the database selection (including the cut size and
    backing NPN store when they deviate from the NPN-4 default).  Fields
    that only say
    *where* things run or land (job id, paths, memory rlimit) are
    excluded, so resubmissions key identically regardless of naming.

    Budgets are part of the key on purpose: a result produced under a
    2-second deadline may be a partially-optimized network, and serving
    it to a request that paid for 60 seconds would be wrong.
    """
    fields = {
        "network": structural_hash,
        "script": list(spec.script),
        "mode": spec.mode,
        "variant": spec.variant,
        "max_passes": spec.max_passes,
        "verify": spec.verify,
        "time_limit": spec.time_limit,
        "conflict_limit": spec.conflict_limit,
        "cut_limit": spec.cut_limit,
        "db": spec.db,
    }
    # Large-cut fields join the key only when they deviate from the
    # default tier, so every pre-existing cache entry keeps its key.
    if spec.cut_size is not None and spec.cut_size != 4:
        fields["cut_size"] = spec.cut_size
        # The store's content shapes results (a warm store holds tighter
        # witnesses), so a different store is a different request.
        fields["npn_store"] = spec.npn_store
    blob = json.dumps(fields, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class ResultCache:
    """Disk-backed result store addressed by :func:`request_key` keys.

    Thread-safe: the serving daemon hits it from every request-handler
    thread and every job-runner thread concurrently.  All sizes are
    tracked from the directory scan at open plus the deltas of this
    process's own puts/evictions, so accounting survives restarts.
    """

    def __init__(self, root: str | Path, max_bytes: int | None = None) -> None:
        if max_bytes is not None and max_bytes <= 0:
            raise ValueError("max_bytes must be positive (or None for unbounded)")
        self.root = Path(root)
        self.objects_dir = self.root / "objects"
        self.objects_dir.mkdir(parents=True, exist_ok=True)
        self.max_bytes = max_bytes
        self._lock = threading.Lock()
        self._sizes: dict[str, int] = {}
        self.hits = 0
        self.misses = 0
        self.puts = 0
        self.evictions = 0
        self.evicted_bytes = 0
        self.corrupt = 0
        self._scan()

    # -- startup ----------------------------------------------------------

    def _scan(self) -> None:
        """Rebuild size accounting from disk (restart-warm, crash-safe).

        Only well-formed *names* are indexed; contents are validated
        lazily on :meth:`get` so a large cache opens in O(entries) stats
        instead of O(bytes) reads.  Leftover ``*.tmp`` files from a
        crashed atomic write are deleted — they were never the entry.
        """
        for path in self.objects_dir.iterdir():
            name = path.name
            if name.endswith(".tmp"):
                try:
                    os.unlink(path)
                except OSError:
                    pass
                continue
            if not name.endswith(".json"):
                continue
            key = name[: -len(".json")]
            if len(key) != 64 or any(c not in "0123456789abcdef" for c in key):
                continue
            try:
                self._sizes[key] = path.stat().st_size
            except OSError:
                continue

    # -- paths ------------------------------------------------------------

    def _path(self, key: str) -> Path:
        return self.objects_dir / f"{key}.json"

    # -- read -------------------------------------------------------------

    def get(self, key: str) -> dict | None:
        """Return the cached result for *key*, or ``None`` on a miss.

        A hit touches the entry's mtime (LRU recency).  A present but
        invalid entry is quarantined and counted as both ``corrupt`` and
        a miss — the caller re-optimizes and overwrites it.
        """
        path = self._path(key)
        try:
            with open(path, "r", encoding="utf-8") as fp:
                entry = json.load(fp)
        except FileNotFoundError:
            with self._lock:
                self.misses += 1
            return None
        except (ValueError, OSError):
            entry = None
        if (
            not isinstance(entry, dict)
            or entry.get("key") != key
            or entry.get("version") != _ENTRY_VERSION
            or not isinstance(entry.get("result"), dict)
        ):
            if entry is None and not path.exists():
                # The read failed because the entry vanished mid-load —
                # a concurrent eviction or a sibling worker's quarantine,
                # not on-disk rot.  Plain miss; quarantining here would
                # fabricate a ``.corrupt`` tombstone for a healthy cache
                # and inflate the corruption counter on every race.
                with self._lock:
                    self.misses += 1
                    self._sizes.pop(key, None)
                return None
            quarantine(path)
            with self._lock:
                self.corrupt += 1
                self.misses += 1
                self._sizes.pop(key, None)
            return None
        try:
            now = time.time()
            os.utime(path, (now, now))
        except OSError:
            pass
        with self._lock:
            self.hits += 1
        return entry["result"]

    # -- write ------------------------------------------------------------

    def put(self, key: str, result: dict) -> None:
        """Store *result* under *key* atomically; evict if over budget."""
        entry = {
            "version": _ENTRY_VERSION,
            "key": key,
            "stored_at": time.time(),
            "result": result,
        }
        text = json.dumps(entry, sort_keys=True) + "\n"
        if fault_active("cache.corrupt"):
            # Model bad bytes reaching disk: the write itself still goes
            # through the atomic path (that part of the discipline is not
            # what this fault drills), but the payload is garbage.
            text = text[: max(1, len(text) // 2)].rstrip("}\n") + '"'
        path = self._path(key)
        atomic_write_text(path, text)
        with self._lock:
            self._sizes[key] = len(text.encode("utf-8"))
            self.puts += 1
            self._evict_locked(keep=key)

    # -- eviction ---------------------------------------------------------

    def _evict_locked(self, keep: str | None = None) -> None:
        """Evict least-recently-used entries until under ``max_bytes``.

        The entry just written (*keep*) is never evicted by its own put,
        even when it alone exceeds the budget — a cache that silently
        drops what it was just asked to remember is worse than one
        briefly over budget.
        """
        if self.max_bytes is None:
            return
        total = sum(self._sizes.values())
        if total <= self.max_bytes:
            return
        candidates = []
        for key in self._sizes:
            if key == keep:
                continue
            try:
                mtime = self._path(key).stat().st_mtime
            except OSError:
                mtime = 0.0
            candidates.append((mtime, key))
        candidates.sort()
        for _, key in candidates:
            if total <= self.max_bytes:
                break
            size = self._sizes.pop(key, 0)
            try:
                os.unlink(self._path(key))
            except OSError:
                pass
            total -= size
            self.evictions += 1
            self.evicted_bytes += size

    # -- introspection ----------------------------------------------------

    @property
    def entry_count(self) -> int:
        with self._lock:
            return len(self._sizes)

    @property
    def total_bytes(self) -> int:
        with self._lock:
            return sum(self._sizes.values())

    def stats(self) -> dict:
        """Counter snapshot for the serve ``/stats`` endpoint."""
        with self._lock:
            return {
                "entries": len(self._sizes),
                "bytes": sum(self._sizes.values()),
                "max_bytes": self.max_bytes,
                "hits": self.hits,
                "misses": self.misses,
                "puts": self.puts,
                "evictions": self.evictions,
                "evicted_bytes": self.evicted_bytes,
                "corrupt": self.corrupt,
            }

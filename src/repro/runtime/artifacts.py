"""Crash-safe on-disk artifacts: atomic writes, validated loads, quarantine.

Every artifact this code base persists (``.npy`` complexity caches, the
NPN JSONL database, generation checkpoints) goes through two rules:

1. **Writes are atomic** — data is written to a temporary file in the
   destination directory, flushed and fsynced, then moved into place with
   :func:`os.replace`.  A crash mid-write leaves either the old artifact
   or no artifact, never a truncated one.
2. **Loads are validated** — shape/dtype (``.npy``) or per-line JSON
   structure (JSONL) is checked before use.  A file that fails either
   step is *quarantined*: renamed to ``<name>.corrupt`` (numbered when
   that exists) next to the original so the evidence survives for
   debugging, and the caller regenerates.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path

import numpy as np

from .errors import CorruptArtifact

__all__ = [
    "atomic_write_bytes",
    "atomic_write_text",
    "atomic_save_npy",
    "load_validated_npy",
    "quarantine",
]


def atomic_write_bytes(path: str | Path, data: bytes) -> None:
    """Write *data* to *path* atomically (temp file + ``os.replace``)."""
    path = Path(path)
    try:
        mode = os.stat(path).st_mode & 0o777
    except OSError:
        # New file: mkstemp creates 0o600; widen to the usual creation
        # mode so a rewritten shared artifact stays group/other-readable.
        mode = 0o666 & ~_current_umask()
    fd, tmp_name = tempfile.mkstemp(
        prefix=path.name + ".", suffix=".tmp", dir=str(path.parent)
    )
    try:
        with os.fdopen(fd, "wb") as fp:
            fp.write(data)
            fp.flush()
            os.fsync(fp.fileno())
        os.chmod(tmp_name, mode)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def _current_umask() -> int:
    # There is no read-only accessor for the process umask.
    mask = os.umask(0)
    os.umask(mask)
    return mask


def atomic_write_text(path: str | Path, text: str, encoding: str = "utf-8") -> None:
    """Write *text* to *path* atomically."""
    atomic_write_bytes(path, text.encode(encoding))


def atomic_save_npy(path: str | Path, array: np.ndarray) -> None:
    """Save *array* in ``.npy`` format atomically."""
    import io

    buf = io.BytesIO()
    np.save(buf, array)
    atomic_write_bytes(path, buf.getvalue())


def quarantine(path: str | Path) -> Path | None:
    """Move a corrupt artifact aside as ``<name>.corrupt[.N]``.

    Returns the quarantine path, or ``None`` when the move failed (e.g.
    a read-only install) — in which case the caller should simply
    regenerate in memory.
    """
    path = Path(path)
    target = path.with_name(path.name + ".corrupt")
    n = 0
    while target.exists():
        n += 1
        target = path.with_name(f"{path.name}.corrupt.{n}")
    try:
        os.replace(path, target)
    except OSError:
        return None
    return target


def load_validated_npy(
    path: str | Path,
    expected_shape: tuple[int, ...] | None = None,
    expected_dtype: np.dtype | type | None = None,
    on_corrupt: str = "quarantine",
) -> np.ndarray | None:
    """Load ``path`` as a plain (non-pickled) array and validate it.

    Returns the array, or ``None`` when the file is missing or corrupt
    and ``on_corrupt == "quarantine"`` (the default; the bad file is
    moved aside so the caller can regenerate).  With
    ``on_corrupt == "raise"`` a :class:`CorruptArtifact` is raised
    instead.
    """
    path = Path(path)
    if not path.exists():
        return None
    reason = None
    try:
        # allow_pickle stays False: the caches are plain numeric arrays,
        # and pickled payloads are both a corruption signal and unsafe.
        array = np.load(path, allow_pickle=False)
    except (ValueError, OSError, EOFError) as exc:
        # numpy raises ValueError both for pickled payloads and for
        # malformed headers; UnpicklingError subclasses are wrapped too.
        reason = f"{type(exc).__name__}: {exc}"
        array = None
    if array is not None:
        if expected_shape is not None and array.shape != expected_shape:
            reason = f"shape {array.shape} != expected {expected_shape}"
            array = None
        elif expected_dtype is not None and array.dtype != np.dtype(expected_dtype):
            reason = f"dtype {array.dtype} != expected {np.dtype(expected_dtype)}"
            array = None
    if array is not None:
        return array
    if on_corrupt == "raise":
        raise CorruptArtifact(str(path), reason or "unreadable")
    quarantine(path)
    return None

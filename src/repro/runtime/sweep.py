"""Sharded multi-host sweeps over a declarative scenario matrix.

A *sweep* is the tier above a batch: the cross product of
``instances × scripts × cut sizes × SAT backends × budgets`` expands to
:class:`~repro.runtime.jobs.JobSpec` cells, the cells are partitioned
into per-host **journal shards** (``shard-<host>/journal.jsonl`` — each
shard is a complete, self-contained ``migopt batch`` workdir), and every
shard runs as one independent ``migopt batch --shard`` invocation
scheduled through a :class:`~repro.runtime.executors.ShardExecutor`
(local subprocess per host by default; ``$REPRO_SWEEP_HOSTS`` command
templates, e.g. ``ssh``, for real fleets).

The exactly-once semantics come for free from PR 3's journal: a shard
owns its jobs' journal, so killing any shard — or the coordinator — and
re-running ``migopt sweep --resume`` completes every cell exactly once.
The coordinator's own durable state is one atomic file, ``sweep.json``
(spec + host assignment), written *before* any shard launches, so a
crashed coordinator recomputes nothing: resumed shards keep the jobs
they were assigned.

Merging replays each shard journal into a per-shard
:class:`~repro.runtime.jobs.BatchReport` and folds them with
:meth:`~repro.runtime.jobs.BatchReport.merge_shard` (slot utilization
namespaced per shard), with

* **conflict detection** — one job id claimed by two shard journals is a
  :class:`SweepConflictError`, never a silent double count;
* **exactly-once artifact adoption** — a job left ``running`` by a dead
  shard whose result artifact is already on disk and valid is adopted as
  ``done`` (and the adoption journaled durably), not re-run;
* **provenance** — merged :class:`~repro.runtime.metrics.PassMetrics`
  and per-shard summaries in ``BatchReport.shards``.

Completed cells are published as trend rows to a standing matrix file
(``benchmarks/results/MATRIX.jsonl``; see ``tools/matrix_report.py``).
"""

from __future__ import annotations

import json
import os
import sys
import time
from dataclasses import dataclass, field, replace
from pathlib import Path

from .artifacts import atomic_write_text
from .errors import ReproRuntimeError
from .executors import ExecutorTask, HostSpec, ShardExecutor, parse_hosts
from .jobs import BatchReport, JobJournal, JobSpec, load_result_artifact

__all__ = [
    "SweepSpec",
    "SweepConflictError",
    "expand_sweep",
    "assign_shards",
    "shard_dir",
    "run_sweep",
    "merge_sweep",
    "matrix_rows",
    "publish_matrix",
]

#: coordinator tick while shards run
_POLL_INTERVAL = 0.1


class SweepConflictError(ReproRuntimeError):
    """One job id appears in more than one shard journal."""


# ----------------------------------------------------------------------
# the declarative matrix
# ----------------------------------------------------------------------


def _normalize_script(script) -> tuple[str, ...]:
    if isinstance(script, str):
        return tuple(step for step in script.split(",") if step)
    return tuple(str(step) for step in script)


@dataclass(frozen=True)
class SweepSpec:
    """A declarative scenario matrix.

    ``instances`` entries locate circuits the way job specs do
    (``{"generate": name, "width": w}`` / ``{"blif": path}`` /
    ``{"bench": path}``) and may override any axis locally (``"scripts"``,
    ``"cut_sizes"``, ``"sat_backends"``, ``"conflict_limits"``) or name
    themselves (``"slug"``) — that is how a round-trip scenario rides in
    one sweep with plain rewriting scenarios.  Axis values multiply; one
    cell becomes one :class:`JobSpec` whose id *is* the scenario id::

        <slug>.<step+step>.c<cut>.<backend>[.k<conflicts>]
    """

    name: str
    instances: tuple[dict, ...]
    scripts: tuple[tuple[str, ...], ...] = (("BF",),)
    cut_sizes: tuple[int, ...] = (4,)
    sat_backends: tuple[str, ...] = ("internal",)
    conflict_limits: tuple[int | None, ...] = (None,)
    verify: str = "sim"
    time_limit: float | None = None
    mem_limit_mb: int | None = None
    npn_store: str | None = None

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "instances": [dict(inst) for inst in self.instances],
            "scripts": [list(script) for script in self.scripts],
            "cut_sizes": list(self.cut_sizes),
            "sat_backends": list(self.sat_backends),
            "conflict_limits": list(self.conflict_limits),
            "verify": self.verify,
            "time_limit": self.time_limit,
            "mem_limit_mb": self.mem_limit_mb,
            "npn_store": self.npn_store,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SweepSpec":
        if "instances" not in data or not data["instances"]:
            raise ValueError("sweep spec needs a non-empty 'instances' list")
        return cls(
            name=str(data.get("name", "sweep")),
            instances=tuple(dict(inst) for inst in data["instances"]),
            scripts=tuple(
                _normalize_script(script)
                for script in data.get("scripts", [["BF"]])
            ),
            cut_sizes=tuple(int(c) for c in data.get("cut_sizes", [4])),
            sat_backends=tuple(
                str(b) for b in data.get("sat_backends", ["internal"])
            ),
            conflict_limits=tuple(
                None if limit is None else int(limit)
                for limit in data.get("conflict_limits", [None])
            ),
            verify=str(data.get("verify", "sim")),
            time_limit=(
                None if data.get("time_limit") is None
                else float(data["time_limit"])
            ),
            mem_limit_mb=(
                None if data.get("mem_limit_mb") is None
                else int(data["mem_limit_mb"])
            ),
            npn_store=(
                None if data.get("npn_store") is None
                else str(data["npn_store"])
            ),
        )


_AXIS_KEYS = ("scripts", "cut_sizes", "sat_backends", "conflict_limits", "slug")


def _instance_slug(inst: dict) -> str:
    if inst.get("slug"):
        return str(inst["slug"])
    if "generate" in inst:
        name = str(inst["generate"])
        width = inst.get("width")
        return name if width is None else f"{name}-w{int(width)}"
    for key in ("blif", "bench"):
        if key in inst:
            return Path(str(inst[key])).stem
    raise ValueError(f"sweep instance {inst!r} names no circuit source")


def _instance_network(inst: dict) -> dict:
    network = {k: v for k, v in inst.items() if k not in _AXIS_KEYS}
    if not any(key in network for key in ("generate", "blif", "bench")):
        raise ValueError(f"sweep instance {inst!r} names no circuit source")
    return network


def expand_sweep(spec: SweepSpec) -> list[JobSpec]:
    """Expand the matrix to one :class:`JobSpec` per cell.

    Scenario ids double as job ids; a collision (two instances sharing
    a slug, say) is refused up front — duplicate ids across shards are
    exactly the conflict the merge step must never see.
    """
    jobs: list[JobSpec] = []
    seen: set[str] = set()
    for inst in spec.instances:
        slug = _instance_slug(inst)
        network = _instance_network(inst)
        scripts = tuple(
            _normalize_script(s) for s in inst.get("scripts", spec.scripts)
        )
        cut_sizes = tuple(int(c) for c in inst.get("cut_sizes", spec.cut_sizes))
        backends = tuple(str(b) for b in inst.get("sat_backends", spec.sat_backends))
        climits = tuple(
            None if c is None else int(c)
            for c in inst.get("conflict_limits", spec.conflict_limits)
        )
        for script in scripts:
            if not script:
                raise ValueError(f"empty script in sweep instance {inst!r}")
            for cut in cut_sizes:
                for backend in backends:
                    for climit in climits:
                        job_id = f"{slug}.{'+'.join(script)}.c{cut}.{backend}"
                        if climit is not None:
                            job_id += f".k{climit}"
                        if job_id in seen:
                            raise SweepConflictError(
                                f"duplicate scenario id {job_id!r} in sweep "
                                f"{spec.name!r}; give the instances distinct "
                                "'slug' values"
                            )
                        seen.add(job_id)
                        jobs.append(JobSpec(
                            job_id=job_id,
                            network=network,
                            script=script,
                            verify=spec.verify,
                            sat_backend=backend,
                            time_limit=spec.time_limit,
                            conflict_limit=climit,
                            cut_size=None if cut == 4 else cut,
                            npn_store=spec.npn_store if cut != 4 else None,
                            mem_limit_mb=spec.mem_limit_mb,
                        ))
    return jobs


def assign_shards(
    job_ids: list[str],
    hosts: list[HostSpec],
    existing: dict[str, str] | None = None,
) -> dict[str, str]:
    """Deterministic round-robin job→host assignment.

    *existing* assignments are kept verbatim (a resumed sweep must not
    move jobs between shards — their journals own them); only new jobs
    are balanced onto the least-loaded hosts.
    """
    assignment = dict(existing or {})
    names = [host.name for host in hosts]
    load = {name: 0 for name in names}
    for host in assignment.values():
        if host in load:
            load[host] += 1
    for job_id in job_ids:
        if job_id in assignment:
            continue
        target = min(names, key=lambda name: (load[name], names.index(name)))
        assignment[job_id] = target
        load[target] += 1
    return assignment


def shard_dir(workdir: str | Path, host: str) -> Path:
    return Path(workdir) / f"shard-{host}"


# ----------------------------------------------------------------------
# coordinator
# ----------------------------------------------------------------------


def _state_path(workdir: Path) -> Path:
    return workdir / "sweep.json"


def _load_state(workdir: Path) -> dict | None:
    path = _state_path(workdir)
    if not path.exists():
        return None
    with open(path, "r", encoding="utf-8") as fp:
        return json.load(fp)


def _coordinator_env() -> dict[str, str]:
    env = dict(os.environ)
    package_root = str(Path(__file__).resolve().parents[2])
    existing = env.get("PYTHONPATH", "")
    if package_root not in existing.split(os.pathsep):
        env["PYTHONPATH"] = (
            package_root + (os.pathsep + existing if existing else "")
        )
    return env


def _shard_argv(
    directory: Path,
    jobs_per_shard: int,
    grace: float,
    max_attempts: int,
    backoff_base: float,
) -> tuple[str, ...]:
    return (
        sys.executable, "-m", "repro.cli", "batch",
        "--shard",
        "--workdir", str(directory),
        "--jobs", str(jobs_per_shard),
        "--grace", str(grace),
        "--max-attempts", str(max_attempts),
        "--backoff", str(backoff_base),
    )


def _shard_unfinished(directory: Path) -> list[str]:
    """Job ids in the shard journal that are not yet terminal."""
    replay = JobJournal.replay(directory / "journal.jsonl")
    return [
        job_id for job_id in replay.order
        if replay.records[job_id].state not in ("done", "quarantined")
    ]


@dataclass
class _ShardState:
    host: HostSpec
    directory: Path
    attempts: int = 0
    running: bool = False
    finished: bool = False
    last_exit: int | None = None


@dataclass
class SweepRun:
    """Everything :func:`run_sweep` persists or returns."""

    report: BatchReport
    workdir: Path
    hosts: list[str] = field(default_factory=list)
    assignment: dict[str, str] = field(default_factory=dict)
    matrix_path: Path | None = None
    published_rows: int = 0


def run_sweep(
    workdir: str | Path,
    spec: SweepSpec | None = None,
    hosts: list[HostSpec] | None = None,
    shards: int = 2,
    jobs_per_shard: int = 1,
    resume: bool = False,
    grace: float = 2.0,
    max_attempts: int = 3,
    backoff_base: float = 0.5,
    shard_attempts: int = 3,
    matrix_path: str | Path | None = None,
    shutdown_check=None,
    verbose: bool = False,
) -> SweepRun:
    """Expand, shard, run, and merge one sweep; returns the merged run.

    Crash points and their recovery, in order:

    * before ``sweep.json`` lands — nothing happened, re-run plain;
    * after ``sweep.json``, before/while shards ran — ``resume=True``
      reuses the persisted assignment; shard journals make every cell
      exactly-once regardless of which shard or coordinator died;
    * a shard process dies (or exits with unfinished jobs) — it is
      relaunched with ``--shard`` (journal resume) up to
      *shard_attempts* times before the sweep reports it unfinished.

    *shutdown_check* is polled each tick (the CLI passes the SIGINT
    flag): when it returns True the shards are drained — each ``migopt
    batch --shard`` drains its own workers on SIGTERM — and the merged
    report is flagged ``interrupted``.
    """
    workdir = Path(workdir)
    state = _load_state(workdir)
    if state is not None and not resume:
        raise FileExistsError(
            f"{_state_path(workdir)} already exists; pass resume=True "
            "(or --resume) to continue it, or use a fresh workdir"
        )
    if state is None and spec is None:
        raise ValueError("a fresh sweep needs a SweepSpec")

    if state is not None:
        persisted_spec = SweepSpec.from_dict(state["spec"])
        if spec is None:
            spec = persisted_spec
        hosts = [
            HostSpec(
                name=entry["name"],
                template=tuple(entry["template"]) if entry.get("template") else None,
            )
            for entry in state["hosts"]
        ]
        assignment: dict[str, str] = dict(state["assignment"])
    else:
        assignment = {}
        if hosts is None:
            hosts = parse_hosts(default_shards=shards)

    jobs = expand_sweep(spec)
    by_id = {job.job_id: job for job in jobs}
    assignment = assign_shards([job.job_id for job in jobs], hosts, assignment)

    # Durably fix the plan before anything runs: a coordinator killed at
    # any later instant recomputes nothing on --resume.
    workdir.mkdir(parents=True, exist_ok=True)
    atomic_write_text(
        _state_path(workdir),
        json.dumps({
            "name": spec.name,
            "spec": spec.to_dict(),
            "hosts": [
                {"name": host.name,
                 "template": list(host.template) if host.template else None}
                for host in hosts
            ],
            "assignment": assignment,
        }, sort_keys=True, indent=2) + "\n",
    )

    # Pre-submit every cell into its shard journal (idempotent: known
    # job ids are skipped), so `migopt batch --shard` needs no job list.
    shard_states: dict[str, _ShardState] = {}
    for host in hosts:
        directory = shard_dir(workdir, host.name)
        shard_states[host.name] = _ShardState(host=host, directory=directory)
        shard_jobs = [
            by_id[job_id] for job_id, target in assignment.items()
            if target == host.name and job_id in by_id
        ]
        if not shard_jobs and not (directory / "journal.jsonl").exists():
            shard_states[host.name].finished = True
            continue
        directory.mkdir(parents=True, exist_ok=True)
        replay = JobJournal.replay(directory / "journal.jsonl")
        with JobJournal(directory / "journal.jsonl") as journal:
            for job in shard_jobs:
                if job.job_id in replay.records:
                    continue
                journal.submit(replace(
                    job, output=str(directory / "outputs" / f"{job.job_id}.blif")
                ))

    executor = ShardExecutor(hosts, grace=max(grace, 5.0))
    env = _coordinator_env()
    interrupted = False
    try:
        while True:
            if shutdown_check is not None and shutdown_check():
                interrupted = True
                executor.drain()
                break
            progressed = False
            for name, shard in shard_states.items():
                if shard.running or shard.finished:
                    continue
                if not _shard_unfinished(shard.directory):
                    shard.finished = True
                    progressed = True
                    continue
                if shard.attempts >= shard_attempts:
                    shard.finished = True
                    progressed = True
                    continue
                task = ExecutorTask(
                    task_id=name,
                    argv=_shard_argv(shard.directory, jobs_per_shard, grace,
                                     max_attempts, backoff_base),
                    env=env,
                    log_path=str(workdir / "logs" / f"shard-{name}.log"),
                    host=name,
                )
                if not executor.has_capacity(task):
                    continue
                shard.attempts += 1
                shard.running = True
                executor.submit(task)
                progressed = True
                if verbose:
                    print(f"[sweep] launch shard {name} "
                          f"attempt {shard.attempts}")
            for task_exit in executor.poll():
                shard = shard_states[str(task_exit.slot)]
                shard.running = False
                shard.last_exit = task_exit.returncode
                if not _shard_unfinished(shard.directory):
                    shard.finished = True
                elif shard.attempts >= shard_attempts:
                    shard.finished = True
                    if verbose:
                        print(f"[sweep] shard {shard.host.name} gave up after "
                              f"{shard.attempts} attempts "
                              f"(exit {task_exit.returncode})")
                progressed = True
            if all(s.finished and not s.running for s in shard_states.values()):
                break
            if not progressed:
                time.sleep(_POLL_INTERVAL)
    finally:
        executor.close()

    report = merge_sweep(workdir, [host.name for host in hosts])
    report.interrupted = report.interrupted or interrupted
    atomic_write_text(
        workdir / "report.json",
        json.dumps(report.to_dict(), sort_keys=True) + "\n",
    )

    run = SweepRun(
        report=report,
        workdir=workdir,
        hosts=[host.name for host in hosts],
        assignment=assignment,
    )
    if matrix_path is not None and not report.interrupted:
        rows = matrix_rows(report, spec.name, by_id)
        publish_matrix(matrix_path, rows)
        run.matrix_path = Path(matrix_path)
        run.published_rows = len(rows)
    return run


# ----------------------------------------------------------------------
# merge
# ----------------------------------------------------------------------


def _shard_report_from_journal(directory: Path) -> BatchReport:
    """Rebuild a shard's outcome from its journal (the source of truth).

    ``report.json`` is preferred for *utilization* (slots, wall time)
    when the shard finished cleanly, but job states always come from the
    journal — a SIGKILLed shard has no report, and a stale one must not
    shadow newer journal events.  A job left ``running`` by a dead shard
    whose result artifact validates is adopted here, durably: the
    adoption event is appended to the shard journal first, so a later
    resume or re-merge counts it done exactly once.
    """
    journal_path = directory / "journal.jsonl"
    replay = JobJournal.replay(journal_path)
    report = BatchReport()
    report.total = len(replay.order)
    adoptions: list[tuple[str, dict]] = []
    for job_id in replay.order:
        record = replay.records[job_id]
        state = record.state
        result = record.result
        if state == "running":
            payload = load_result_artifact(
                directory / "results" / f"{job_id}.json", job_id
            )
            if payload is not None and payload.get("status") == "ok":
                result = {
                    key: payload[key]
                    for key in ("size_before", "size_after", "depth_before",
                                "depth_after", "runtime", "verify", "output",
                                "metrics")
                    if key in payload
                }
                result["steps"] = payload.get("steps", [])
                adoptions.append((job_id, result))
                state = "done"
                record.adopted = True
        summary = {
            "job_id": job_id,
            "state": state,
            "attempts": record.attempts,
        }
        if record.adopted:
            summary["adopted"] = True
        if record.degradations:
            summary["degradations"] = list(record.degradations)
        if result is not None:
            for key in ("size_before", "size_after", "depth_before",
                        "depth_after", "runtime", "verify", "output",
                        "metrics", "steps"):
                if key in result:
                    summary[key] = result[key]
        if record.last_error is not None:
            summary["error"] = record.last_error
        report.jobs.append(summary)
        if state == "done":
            report.done += 1
            if record.adopted:
                report.adopted += 1
            metrics = (result or {}).get("metrics")
            if isinstance(metrics, dict):
                from .metrics import PassMetrics

                report.metrics.merge(PassMetrics.from_dict(metrics))
        elif state == "quarantined":
            report.quarantined += 1
    if adoptions:
        with JobJournal(journal_path) as journal:
            for job_id, result in adoptions:
                journal.done(job_id, result, adopted=True)

    report_path = directory / "report.json"
    if report_path.exists():
        try:
            persisted = BatchReport.from_dict(
                json.loads(report_path.read_text(encoding="utf-8"))
            )
        except (ValueError, OSError, KeyError, TypeError):
            persisted = None
        if persisted is not None:
            report.jobs_per_slot = dict(persisted.jobs_per_slot)
            report.max_concurrent = persisted.max_concurrent
            report.wall_seconds = persisted.wall_seconds
            report.retries = persisted.retries
            report.failed_attempts = persisted.failed_attempts
    return report


def merge_sweep(workdir: str | Path, hosts: list[str]) -> BatchReport:
    """Merge every shard of *workdir* into one report, exactly once.

    Raises :class:`SweepConflictError` when a job id appears in more
    than one shard journal — two shards both claiming a cell means the
    assignment was corrupted, and silently keeping either result would
    hide it.
    """
    merged = BatchReport()
    owner: dict[str, str] = {}
    for host in hosts:
        directory = shard_dir(workdir, host)
        if not (directory / "journal.jsonl").exists():
            continue
        shard_report = _shard_report_from_journal(directory)
        for summary in shard_report.jobs:
            job_id = summary["job_id"]
            if job_id in owner:
                raise SweepConflictError(
                    f"job {job_id!r} claimed by shards {owner[job_id]!r} "
                    f"and {host!r}; shard journals must partition the sweep"
                )
            owner[job_id] = host
        merged.merge_shard(host, shard_report)
    return merged


# ----------------------------------------------------------------------
# the standing matrix
# ----------------------------------------------------------------------


def matrix_rows(
    report: BatchReport,
    sweep_name: str,
    specs_by_id: dict[str, JobSpec],
    ts: float | None = None,
) -> list[dict]:
    """Trend rows for every completed cell of a merged sweep report."""
    if ts is None:
        ts = time.time()
    rows: list[dict] = []
    for summary in report.jobs:
        if summary.get("state") != "done":
            continue
        job_id = summary["job_id"]
        spec = specs_by_id.get(job_id)
        steps = summary.get("steps", [])
        row = {
            "ts": round(ts, 3),
            "sweep": sweep_name,
            "scenario": job_id,
            "shard": summary.get("shard"),
            "size_before": summary.get("size_before"),
            "size_after": summary.get("size_after"),
            "depth_before": summary.get("depth_before"),
            "depth_after": summary.get("depth_after"),
            "runtime": summary.get("runtime"),
            "verify": summary.get("verify"),
            "verified": (
                summary.get("verify") not in (None, "off")
                and all(step.get("status") == "ok" for step in steps)
            ),
        }
        if spec is not None:
            row["network"] = dict(spec.network)
            row["script"] = list(spec.script)
            row["cut_size"] = spec.cut_size if spec.cut_size is not None else 4
            row["sat_backend"] = spec.sat_backend
            row["conflict_limit"] = spec.conflict_limit
        rows.append(row)
    return rows


def publish_matrix(path: str | Path, rows: list[dict]) -> int:
    """Append *rows* to the standing matrix JSONL, fsynced (append-only:
    history is the point — ``tools/matrix_report.py`` reads trends from
    successive entries for the same scenario)."""
    if not rows:
        return 0
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "ab") as fp:
        for row in rows:
            fp.write((json.dumps(row, sort_keys=True) + "\n").encode("utf-8"))
        fp.flush()
        os.fsync(fp.fileno())
    return len(rows)

"""Batch policy and precompute shared by the rewriting passes.

The array-native hot path (docs/PERFORMANCE.md) has two independently
useful stages:

1. **Function batch** — :meth:`repro.core.cuts.CutSet.compute_functions`
   evaluates every enumerated cut truth table level-by-level through the
   simulation engine, so a whole level costs a handful of numpy ops.
2. **Lookup batch** — :meth:`repro.core.cuts.CutSet.batch_tt4s` collects
   the deduplicated extended tables and
   :meth:`repro.database.npn_db.NpnDatabase.lookup_batch` canonizes them
   in one vectorized NPN sweep; the rewriter then answers each per-cut
   consult from the resulting table via ``db.lookup_in``.

Both stages are bit-identical to the scalar pipeline (same expansion
definition, same canonical tie-breaks), so the *chosen rewrites cannot
differ* — only where the arithmetic runs.  ``tests/rewriting/
test_differential.py`` pins this against a frozen scalar oracle.

The ``batch`` parameter accepted by the rewriters and by
:func:`repro.rewriting.engine.functional_hashing`:

``False``
    fully scalar pipeline (the pre-batch behaviour).
``"auto"`` (default)
    engage both stages on networks with at least :data:`BATCH_MIN_GATES`
    gates.  The function batch used to require a width heuristic on top
    (level-parallel evaluation had a post-hoc compile step to amortize);
    since the program is recorded *during* enumeration and executes over
    provenance-DAG levels — bounded by cut cone depth, not network depth
    — it pays off on chain-shaped networks too, so gate count is the
    only gate.
``True`` / ``"full"``
    force both stages regardless of size (tiny-network coverage in the
    differential tests rides on this).

This module deliberately imports no numpy: the arrays flow opaquely from
``CutSet`` to ``NpnDatabase`` (enforced by ``tools/check_layers.py`` —
rewriting passes orchestrate batches, the kernel layer owns the math).
"""

from __future__ import annotations

from ..core.cuts import CutSet
from ..database.npn_db import NpnDatabase
from ..runtime.metrics import PassMetrics

__all__ = [
    "BATCH_MIN_GATES",
    "resolve_batch",
    "prepare_lookup_table",
]

#: Below this gate count the scalar loop wins — batch setup is pure
#: overhead on networks that rewrite in well under a millisecond.  The
#: bound sat at 128 while the function batch carried a post-hoc compile
#: step; with the program recorded during enumeration the crossover is
#: much earlier — even a 96-gate adder spends milliseconds on cold
#: scalar canonizations the vectorized NPN sweep amortizes.
BATCH_MIN_GATES = 32


def resolve_batch(batch, num_gates: int, depth: int) -> tuple[bool, bool]:
    """Return ``(function_batch, lookup_batch)`` for a ``batch`` setting.

    *depth* is accepted for interface stability; the former width
    heuristic it fed is obsolete now that the batch program rides along
    enumeration (see the module docstring).
    """
    if batch is False:
        return False, False
    if batch is True or batch == "full":
        return True, True
    if batch == "auto":
        engage = num_gates >= BATCH_MIN_GATES
        return engage, engage
    raise ValueError(
        f"batch must be False, True, 'auto' or 'full', got {batch!r}"
    )


def prepare_lookup_table(
    cuts: CutSet,
    db: NpnDatabase,
    function_batch: bool,
    lookup_batch: bool,
    metrics: PassMetrics | None = None,
):
    """Run the enabled precompute stages; return the lookup table or ``None``.

    With the table in hand a rewriter consults ``db.lookup_in(tt, table)``
    instead of ``db.lookup(tt)`` — identical contract (counters, fault
    hooks, ``KeyError`` on miss), canonization already paid.  ``None``
    means "stay fully scalar".  A cut set the batch evaluator cannot
    handle (cuts wider than 4 inputs, missing provenance) silently falls
    back to collecting the tables through the scalar memo — the NPN sweep
    is still batched.
    """
    if not lookup_batch:
        return None
    if function_batch:
        cuts.compute_functions()
    table = db.lookup_batch(cuts.batch_tt4s(db.num_vars))
    if metrics is not None:
        metrics.batch_npn_lookups += len(table)
    return table

"""Bottom-up functional hashing (Algorithm 2 of the paper).

Nodes are visited in topological order.  For every node, each 4-feasible
cut is matched against the precomputed minimum MIG of its function; the
resulting implementations — built over the *candidate* implementations of
the cut leaves — are collected as candidates ``(signal, size, depth)``.
Only a bounded number of best candidates per node is kept ("similar to
priority cuts in technology mapping", ref. [11]), and the best candidate
of each output node is selected at the end.

Size and depth of a candidate are estimates (leaf sizes plus database
size; sharing between leaf cones is not modelled), exactly as in the
paper's Algorithm 2 bookkeeping; the final network is measured after
dead-node cleanup.

Hot-path engineering (docs/PERFORMANCE.md): cut truth tables come from
the :class:`~repro.core.cuts.CutSet` incremental memo instead of cone
re-simulation; for the F-variants, cut enumeration itself is restricted
to fanout-free cuts (shared gates become leaves) so no per-cut
admissibility walk runs at all and exact cone sizes fall out of the
merge; and every event is counted in an optional
:class:`~repro.runtime.metrics.PassMetrics`.
"""

from __future__ import annotations

from bisect import insort
from itertools import product
from typing import NamedTuple

from ..core.cuts import cut_cone_nodes, enumerate_cut_set
from ..core.mig import CONST0, Mig, make_signal
from ..core.truth_table import tt_extend
from ..database.npn_db import NpnDatabase
from ..runtime.metrics import PassMetrics
from .batch import prepare_lookup_table, resolve_batch

__all__ = ["rewrite_bottom_up"]


class _Candidate(NamedTuple):
    """A candidate implementation of a node in the new network.

    A NamedTuple rather than a (frozen) dataclass: one is built per
    visited node plus one per rebuilt implementation, and the tuple
    constructor is measurably cheaper than ``object.__setattr__`` per
    field on the hot path.
    """

    signal: int
    size: int
    depth: int


def _insert(
    candidates: list[_Candidate], new: _Candidate, limit: int
) -> list[_Candidate]:
    """Keep the best *limit* candidates, ordered by (size, depth).

    The list is always sorted, so one bisected insertion replaces the
    former sort-on-every-insert; with the tiny per-node candidate limits
    this loop runs for every (cut, leaf-combination) pair, which made the
    repeated full sorts a measurable slice of the bottom-up pass.

    A candidate for an already-present signal replaces the stored entry
    when its (size, depth) estimate is better: different cuts reach the
    same strashed signal with different leaf combinations, and keeping
    the first-seen (possibly worse) estimate would overstate the cost of
    every candidate built on top of this node downstream.

    Stored candidates are additionally kept dominance-free: a candidate
    no better than an existing one on *both* axes wastes a slot the
    sorted-by-size order would otherwise hand to a deeper-but-smaller
    (or shallower-but-larger) alternative — the insort key alone cannot
    see that an equal-size entry is strictly worse on depth.  Exact
    (size, depth) ties between different signals are kept: they cost the
    same but offer distinct sharing opportunities downstream.
    """
    dup = None
    for i, existing in enumerate(candidates):
        if existing.signal == new.signal:
            if (new.size, new.depth) >= (existing.size, existing.depth):
                return candidates
            dup = i
            break
    if any(
        existing.size <= new.size
        and existing.depth <= new.depth
        and (existing.size, existing.depth) != (new.size, new.depth)
        for existing in candidates
    ):
        return candidates
    if dup is not None:
        del candidates[dup]
    candidates[:] = [
        existing
        for existing in candidates
        if not (
            new.size <= existing.size
            and new.depth <= existing.depth
            and (new.size, new.depth) != (existing.size, existing.depth)
        )
    ]
    if len(candidates) >= limit:
        worst = candidates[-1]
        if (new.size, new.depth) >= (worst.size, worst.depth):
            return candidates
    insort(candidates, new, key=lambda cand: (cand.size, cand.depth))
    del candidates[limit:]
    return candidates


def rewrite_bottom_up(
    mig: Mig,
    db: NpnDatabase,
    depth_preserving: bool = False,
    fanout_free: bool = False,
    cut_size: int = 4,
    cut_limit: int = 8,
    candidate_limit: int = 3,
    combination_limit: int = 16,
    batch="auto",
    metrics: PassMetrics | None = None,
) -> Mig:
    """Run one bottom-up functional-hashing pass; returns the optimized MIG.

    ``batch`` selects the array-native precompute (see
    :mod:`repro.rewriting.batch`); every setting chooses byte-identical
    rewrites — only where the truth-table and NPN arithmetic runs moves.
    """
    if cut_size > db.num_vars:
        raise ValueError(f"cut size {cut_size} exceeds database arity {db.num_vars}")
    if metrics is None:
        metrics = PassMetrics()
    fanout = mig.fanout_counts()
    levels = mig.levels()
    # Resolved *before* enumeration so the merge loop can record the
    # batch program inline (see repro.core.cuts._CutProgram).
    function_batch, lookup_batch = resolve_batch(
        batch, mig.num_gates, max(levels, default=0)
    )
    with metrics.phase("enumerate"):
        # F-variants enumerate only fanout-free cuts (shared gates become
        # leaves), so no per-cut admissibility walk is needed later.
        cuts = enumerate_cut_set(
            mig,
            k=cut_size,
            cut_limit=cut_limit,
            metrics=metrics,
            ffr_fanout=fanout if fanout_free else None,
            compile_functions=function_batch,
        )
    with metrics.phase("batch"):
        table = prepare_lookup_table(
            cuts, db, function_batch, lookup_batch, metrics
        )
    new = Mig.like(mig)

    cand: list[list[_Candidate] | None] = [None] * mig.num_nodes
    cand[0] = [_Candidate(CONST0, 0, 0)]
    for i in range(1, mig.num_pis + 1):
        cand[i] = [_Candidate(make_signal(i), 0, 0)]

    # Counters stay in locals inside the hot loop and are flushed into
    # *metrics* once per pass — attribute stores per cut are measurable.
    considered = admitted_total = rebuilt = db_hits = db_misses = 0
    trivial_r = invalid_r = miss_r = no_gain_r = depth_r = 0
    cf_hits = 0
    cut_function = cuts.function
    functions_get = cuts._functions.get
    if table is None:
        db_lookup = db.lookup
    else:
        db_lookup = lambda tt: db.lookup_in(tt, table)  # noqa: E731
    num_vars = db.num_vars
    new_maj = new.maj
    instantiated_depth_entry = db.instantiated_depth_entry
    rebuild_entry = db.rebuild_entry
    all_entries = cuts.entries
    # With the compiled batch in place every cut answers from one list
    # index into the per-slot extended tables; otherwise the loop stays
    # on the (node, leaves)-keyed memo.
    slot_tables = cuts.slot_tables(num_vars) if table is not None else None
    pad_signals = [CONST0] * num_vars
    pad_depths = [0] * num_vars

    with metrics.phase("rewrite"):
        for node in mig.gates():
            # Baseline candidate: rebuild the node from its fanins' best.
            a, b, c = mig.fanins(node)
            best_a = cand[a >> 1][0]
            best_b = cand[b >> 1][0]
            best_c = cand[c >> 1][0]
            baseline = _Candidate(
                new_maj(
                    best_a.signal ^ (a & 1),
                    best_b.signal ^ (b & 1),
                    best_c.signal ^ (c & 1),
                ),
                1 + best_a.size + best_b.size + best_c.size,
                1 + max(best_a.depth, best_b.depth, best_c.depth),
            )
            entries = _insert([], baseline, candidate_limit)

            for cut_entry in all_entries[node]:
                leaves = cut_entry[0]
                if leaves == (node,) or node in leaves:
                    trivial_r += 1
                    continue
                considered += 1
                if fanout_free:
                    # Restricted enumeration: fanout-free by construction,
                    # exact cone size rode along from the merge.
                    cone_gates = cut_entry[2]
                else:
                    internal = cut_cone_nodes(mig, node, leaves, None)
                    if internal is None:
                        invalid_r += 1
                        continue
                    cone_gates = len(internal)
                num_leaves = len(leaves)
                if slot_tables is not None:
                    # Batch fast path: the slot's table is already
                    # extended to num_vars — a straight list index.
                    tt4 = slot_tables[cut_entry[3]]
                    cf_hits += 1
                else:
                    # Memo probe inlined (same bookkeeping as
                    # cuts.function's fast path, counter flushed below).
                    tt = functions_get((node, leaves))
                    if tt is None:
                        tt = cut_function(node, leaves)
                    else:
                        cf_hits += 1
                    tt4 = (
                        tt if num_leaves == num_vars
                        else tt_extend(tt, num_leaves, num_vars)
                    )
                try:
                    entry, transform = db_lookup(tt4)
                except KeyError:
                    db_misses += 1
                    miss_r += 1
                    continue
                db_hits += 1
                # Algorithm 2 admits replacements "that reduce the size";
                # equal-size replacements are kept only in depth-preserving
                # mode, where they may still help depth.
                gain = cone_gates - entry.size
                if gain < 0 or (gain == 0 and not depth_preserving):
                    no_gain_r += 1
                    continue
                leaf_options = [cand[leaf][:2] for leaf in leaves]
                pad_s = pad_signals[num_leaves:]
                pad_d = pad_depths[num_leaves:]
                combos = 0
                admitted = False
                for combo in product(*leaf_options):
                    combos += 1
                    if combos > combination_limit:
                        break
                    leaf_depths = [cnd.depth for cnd in combo] + pad_d
                    depth = instantiated_depth_entry(
                        entry, transform, leaf_depths
                    )
                    if depth_preserving and depth > levels[node]:
                        continue
                    if gain == 0 and depth >= levels[node]:
                        continue  # equal size must at least improve depth
                    size = entry.size + sum(cnd.size for cnd in combo)
                    leaf_signals = [cnd.signal for cnd in combo] + pad_s
                    signal = rebuild_entry(new, entry, transform, leaf_signals)
                    rebuilt += 1
                    admitted = True
                    entries = _insert(
                        entries, _Candidate(signal, size, depth), candidate_limit
                    )
                if admitted:
                    admitted_total += 1
                else:
                    depth_r += 1
            cand[node] = entries

        for s, name in zip(mig.outputs, mig.output_names):
            best = cand[s >> 1][0]
            new.add_po(best.signal ^ (s & 1), name)

    metrics.nodes_visited += mig.num_gates
    metrics.cut_function_cache_hits += cf_hits
    metrics.cuts_considered += considered
    metrics.cuts_admitted += admitted_total
    metrics.nodes_rebuilt += rebuilt
    metrics.db_hits += db_hits
    metrics.db_misses += db_misses
    rejected = {
        "trivial": trivial_r,
        "invalid-cone": invalid_r,
        "db-miss": miss_r,
        "no-gain": no_gain_r,
        "depth-increase": depth_r,
    }
    for reason, count in rejected.items():
        if count:
            metrics.cuts_rejected[reason] = (
                metrics.cuts_rejected.get(reason, 0) + count
            )
    with metrics.phase("cleanup"):
        # The construction network only ever saw new.maj, so the
        # renumbering fast path is byte-identical to cleanup().
        result = new.compact()
    # Kernel counters of the construction network and the cleaned copy.
    metrics.record_network(new)
    metrics.record_network(result)
    if hasattr(db, "drain_metrics"):
        # Dynamic databases account their tier counters per pass.
        db.drain_metrics(metrics)
    return result

"""Bottom-up functional hashing (Algorithm 2 of the paper).

Nodes are visited in topological order.  For every node, each 4-feasible
cut is matched against the precomputed minimum MIG of its function; the
resulting implementations — built over the *candidate* implementations of
the cut leaves — are collected as candidates ``(signal, size, depth)``.
Only a bounded number of best candidates per node is kept ("similar to
priority cuts in technology mapping", ref. [11]), and the best candidate
of each output node is selected at the end.

Size and depth of a candidate are estimates (leaf sizes plus database
size; sharing between leaf cones is not modelled), exactly as in the
paper's Algorithm 2 bookkeeping; the final network is measured after
dead-node cleanup.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product

from ..core.cuts import cut_cone, enumerate_cuts
from ..core.mig import CONST0, Mig, make_signal
from ..core.truth_table import tt_extend
from ..database.npn_db import NpnDatabase
from .ffr import cut_is_fanout_free

__all__ = ["rewrite_bottom_up"]


@dataclass(frozen=True)
class _Candidate:
    """A candidate implementation of a node in the new network."""

    signal: int
    size: int
    depth: int


def _insert(
    candidates: list[_Candidate], new: _Candidate, limit: int
) -> list[_Candidate]:
    """Keep the best *limit* candidates, ordered by (size, depth)."""
    for existing in candidates:
        if existing.signal == new.signal:
            return candidates
    candidates.append(new)
    candidates.sort(key=lambda cand: (cand.size, cand.depth))
    return candidates[:limit]


def rewrite_bottom_up(
    mig: Mig,
    db: NpnDatabase,
    depth_preserving: bool = False,
    fanout_free: bool = False,
    cut_size: int = 4,
    cut_limit: int = 8,
    candidate_limit: int = 3,
    combination_limit: int = 16,
) -> Mig:
    """Run one bottom-up functional-hashing pass; returns the optimized MIG."""
    if cut_size > db.num_vars:
        raise ValueError(f"cut size {cut_size} exceeds database arity {db.num_vars}")
    cuts = enumerate_cuts(mig, k=cut_size, cut_limit=cut_limit)
    fanout = mig.fanout_counts()
    levels = mig.levels()
    new = Mig.like(mig)

    cand: dict[int, list[_Candidate]] = {0: [_Candidate(CONST0, 0, 0)]}
    for i in range(1, mig.num_pis + 1):
        cand[i] = [_Candidate(make_signal(i), 0, 0)]

    for node in mig.gates():
        entries: list[_Candidate] = []
        # Baseline candidate: rebuild the node from its fanins' best.
        a, b, c = mig.fanins(node)
        best_a, best_b, best_c = (cand[a >> 1][0], cand[b >> 1][0], cand[c >> 1][0])
        baseline = _Candidate(
            new.maj(
                best_a.signal ^ (a & 1),
                best_b.signal ^ (b & 1),
                best_c.signal ^ (c & 1),
            ),
            1 + best_a.size + best_b.size + best_c.size,
            1 + max(best_a.depth, best_b.depth, best_c.depth),
        )
        entries = _insert(entries, baseline, candidate_limit)

        for leaves in cuts[node]:
            if leaves == (node,) or node in leaves:
                continue
            if fanout_free and not cut_is_fanout_free(mig, node, leaves, fanout):
                continue
            try:
                internal = cut_cone(mig, node, leaves)
                tt = mig.cut_function(node, leaves)
            except ValueError:
                continue
            tt4 = tt_extend(tt, len(leaves), db.num_vars)
            try:
                entry, _ = db.lookup(tt4)
            except KeyError:
                continue
            # Algorithm 2 admits replacements "that reduce the size";
            # equal-size replacements are kept only in depth-preserving
            # mode, where they may still help depth.
            gain = len(internal) - entry.size
            if gain < 0 or (gain == 0 and not depth_preserving):
                continue
            leaf_options = [cand[leaf][:2] for leaf in leaves]
            combos = 0
            for combo in product(*leaf_options):
                combos += 1
                if combos > combination_limit:
                    break
                leaf_signals = [cnd.signal for cnd in combo]
                leaf_signals += [CONST0] * (db.num_vars - len(leaves))
                leaf_depths = [cnd.depth for cnd in combo]
                leaf_depths += [0] * (db.num_vars - len(leaves))
                depth = db.instantiated_depth(tt4, leaf_depths)
                if depth_preserving and depth > levels[node]:
                    continue
                if gain == 0 and depth >= levels[node]:
                    continue  # equal size must at least improve depth
                size = entry.size + sum(cnd.size for cnd in combo)
                signal = db.rebuild(new, tt4, leaf_signals)
                entries = _insert(
                    entries, _Candidate(signal, size, depth), candidate_limit
                )
        cand[node] = entries

    for s, name in zip(mig.outputs, mig.output_names):
        best = cand[s >> 1][0]
        new.add_po(best.signal ^ (s & 1), name)
    return new.cleanup()

"""Bottom-up functional hashing (Algorithm 2 of the paper).

Nodes are visited in topological order.  For every node, each 4-feasible
cut is matched against the precomputed minimum MIG of its function; the
resulting implementations — built over the *candidate* implementations of
the cut leaves — are collected as candidates ``(signal, size, depth)``.
Only a bounded number of best candidates per node is kept ("similar to
priority cuts in technology mapping", ref. [11]), and the best candidate
of each output node is selected at the end.

Size and depth of a candidate are estimates (leaf sizes plus database
size; sharing between leaf cones is not modelled), exactly as in the
paper's Algorithm 2 bookkeeping; the final network is measured after
dead-node cleanup.

Hot-path engineering (docs/PERFORMANCE.md): cut truth tables come from
the :class:`~repro.core.cuts.CutSet` incremental memo instead of cone
re-simulation; for the F-variants, cut enumeration itself is restricted
to fanout-free cuts (shared gates become leaves) so no per-cut
admissibility walk runs at all and exact cone sizes fall out of the
merge; and every event is counted in an optional
:class:`~repro.runtime.metrics.PassMetrics`.
"""

from __future__ import annotations

from bisect import insort
from dataclasses import dataclass
from itertools import product

from ..core.cuts import cut_cone_nodes, enumerate_cut_set
from ..core.mig import CONST0, Mig, make_signal
from ..core.truth_table import tt_extend
from ..database.npn_db import NpnDatabase
from ..runtime.metrics import PassMetrics

__all__ = ["rewrite_bottom_up"]


@dataclass(frozen=True)
class _Candidate:
    """A candidate implementation of a node in the new network."""

    signal: int
    size: int
    depth: int


def _insert(
    candidates: list[_Candidate], new: _Candidate, limit: int
) -> list[_Candidate]:
    """Keep the best *limit* candidates, ordered by (size, depth).

    The list is always sorted, so one bisected insertion replaces the
    former sort-on-every-insert; with the tiny per-node candidate limits
    this loop runs for every (cut, leaf-combination) pair, which made the
    repeated full sorts a measurable slice of the bottom-up pass.
    """
    for existing in candidates:
        if existing.signal == new.signal:
            return candidates
    if len(candidates) >= limit:
        worst = candidates[-1]
        if (new.size, new.depth) >= (worst.size, worst.depth):
            return candidates
    insort(candidates, new, key=lambda cand: (cand.size, cand.depth))
    del candidates[limit:]
    return candidates


def rewrite_bottom_up(
    mig: Mig,
    db: NpnDatabase,
    depth_preserving: bool = False,
    fanout_free: bool = False,
    cut_size: int = 4,
    cut_limit: int = 8,
    candidate_limit: int = 3,
    combination_limit: int = 16,
    metrics: PassMetrics | None = None,
) -> Mig:
    """Run one bottom-up functional-hashing pass; returns the optimized MIG."""
    if cut_size > db.num_vars:
        raise ValueError(f"cut size {cut_size} exceeds database arity {db.num_vars}")
    if metrics is None:
        metrics = PassMetrics()
    fanout = mig.fanout_counts()
    with metrics.phase("enumerate"):
        # F-variants enumerate only fanout-free cuts (shared gates become
        # leaves), so no per-cut admissibility walk is needed later.
        cuts = enumerate_cut_set(
            mig,
            k=cut_size,
            cut_limit=cut_limit,
            metrics=metrics,
            ffr_fanout=fanout if fanout_free else None,
        )
    levels = mig.levels()
    new = Mig.like(mig)

    cand: dict[int, list[_Candidate]] = {0: [_Candidate(CONST0, 0, 0)]}
    for i in range(1, mig.num_pis + 1):
        cand[i] = [_Candidate(make_signal(i), 0, 0)]

    # Counters stay in locals inside the hot loop and are flushed into
    # *metrics* once per pass — attribute stores per cut are measurable.
    considered = admitted_total = rebuilt = db_hits = db_misses = 0
    rejected: dict[str, int] = {}
    cut_function = cuts.function
    cone_size = cuts.cone_size
    db_lookup = db.lookup
    num_vars = db.num_vars

    with metrics.phase("rewrite"):
        for node in mig.gates():
            entries: list[_Candidate] = []
            # Baseline candidate: rebuild the node from its fanins' best.
            a, b, c = mig.fanins(node)
            best_a, best_b, best_c = (cand[a >> 1][0], cand[b >> 1][0], cand[c >> 1][0])
            baseline = _Candidate(
                new.maj(
                    best_a.signal ^ (a & 1),
                    best_b.signal ^ (b & 1),
                    best_c.signal ^ (c & 1),
                ),
                1 + best_a.size + best_b.size + best_c.size,
                1 + max(best_a.depth, best_b.depth, best_c.depth),
            )
            entries = _insert(entries, baseline, candidate_limit)

            for leaves in cuts[node]:
                if leaves == (node,) or node in leaves:
                    rejected["trivial"] = rejected.get("trivial", 0) + 1
                    continue
                considered += 1
                if fanout_free:
                    # Restricted enumeration: fanout-free by construction,
                    # exact cone size known from the merge.
                    cone_gates = cone_size(node, leaves)
                    if cone_gates is None:
                        rejected["invalid-cone"] = (
                            rejected.get("invalid-cone", 0) + 1
                        )
                        continue
                else:
                    internal = cut_cone_nodes(mig, node, leaves, None)
                    if internal is None:
                        rejected["invalid-cone"] = (
                            rejected.get("invalid-cone", 0) + 1
                        )
                        continue
                    cone_gates = len(internal)
                tt = cut_function(node, leaves)
                tt4 = tt_extend(tt, len(leaves), num_vars)
                try:
                    entry, _ = db_lookup(tt4)
                except KeyError:
                    db_misses += 1
                    rejected["db-miss"] = rejected.get("db-miss", 0) + 1
                    continue
                db_hits += 1
                # Algorithm 2 admits replacements "that reduce the size";
                # equal-size replacements are kept only in depth-preserving
                # mode, where they may still help depth.
                gain = cone_gates - entry.size
                if gain < 0 or (gain == 0 and not depth_preserving):
                    rejected["no-gain"] = rejected.get("no-gain", 0) + 1
                    continue
                leaf_options = [cand[leaf][:2] for leaf in leaves]
                combos = 0
                admitted = False
                for combo in product(*leaf_options):
                    combos += 1
                    if combos > combination_limit:
                        break
                    leaf_signals = [cnd.signal for cnd in combo]
                    leaf_signals += [CONST0] * (num_vars - len(leaves))
                    leaf_depths = [cnd.depth for cnd in combo]
                    leaf_depths += [0] * (num_vars - len(leaves))
                    depth = db.instantiated_depth(tt4, leaf_depths)
                    if depth_preserving and depth > levels[node]:
                        continue
                    if gain == 0 and depth >= levels[node]:
                        continue  # equal size must at least improve depth
                    size = entry.size + sum(cnd.size for cnd in combo)
                    signal = db.rebuild(new, tt4, leaf_signals)
                    rebuilt += 1
                    admitted = True
                    entries = _insert(
                        entries, _Candidate(signal, size, depth), candidate_limit
                    )
                if admitted:
                    admitted_total += 1
                else:
                    rejected["depth-increase"] = (
                        rejected.get("depth-increase", 0) + 1
                    )
            cand[node] = entries

        for s, name in zip(mig.outputs, mig.output_names):
            best = cand[s >> 1][0]
            new.add_po(best.signal ^ (s & 1), name)

    metrics.nodes_visited += mig.num_gates
    metrics.cuts_considered += considered
    metrics.cuts_admitted += admitted_total
    metrics.nodes_rebuilt += rebuilt
    metrics.db_hits += db_hits
    metrics.db_misses += db_misses
    for reason, count in rejected.items():
        metrics.cuts_rejected[reason] = metrics.cuts_rejected.get(reason, 0) + count
    with metrics.phase("cleanup"):
        result = new.cleanup()
    # Kernel counters of the construction network and the cleaned copy.
    metrics.record_network(new)
    metrics.record_network(result)
    return result

"""On-demand minimum-MIG database for cuts with more than 4 inputs.

Sec. IV of the paper: *"Already for 5 inputs, the enumeration of all NPN
classes becomes impractical, which can be circumvented by considering a
much smaller subset (see, e.g., [9])."*  This module implements that
idea: instead of precomputing all 616 126 NPN-5 classes, entries are
synthesized lazily for exactly the cut functions the rewriter encounters
(the working set of real netlists is tiny), with an LRU-bounded cache.

Each entry starts as a heuristic upper bound
(:func:`repro.exact.heuristic.heuristic_mig`) and can optionally be
tightened by budgeted exact synthesis.  The class is interface-compatible
with :class:`repro.database.npn_db.NpnDatabase`, so every rewriting
variant works unchanged with ``cut_size=5`` (or 6):

>>> db5 = DynamicDatabase(num_vars=5)
>>> optimized = functional_hashing(mig, db5, "BF", cut_size=5)
"""

from __future__ import annotations

from collections import OrderedDict

from ..core.npn import NPNTransform, npn_canonize
from ..database.npn_db import DbEntry, NpnDatabase
from ..exact.heuristic import heuristic_mig
from ..exact.synthesis import ExactSynthesizer

__all__ = ["DynamicDatabase"]


class DynamicDatabase(NpnDatabase):
    """A lazily populated NPN database for 5- or 6-input functions."""

    def __init__(
        self,
        num_vars: int = 5,
        improve_budget: int = 0,
        max_entries: int = 50000,
    ) -> None:
        if num_vars < 4 or num_vars > 6:
            raise ValueError("DynamicDatabase supports 4 to 6 variables")
        super().__init__([], num_vars)
        self.improve_budget = improve_budget
        self.max_entries = max_entries
        self._lru: OrderedDict[int, DbEntry] = OrderedDict()
        self.misses = 0
        self.hits = 0

    @property
    def complete(self) -> bool:  # noqa: D401 — never complete by design
        """Always False: entries exist only for functions seen so far."""
        return False

    def lookup(self, tt: int) -> tuple[DbEntry, NPNTransform]:
        """Return (entry, transform); synthesizes the entry on first use."""
        rep, transform = npn_canonize(tt, self.num_vars)
        entry = self._lru.get(rep)
        if entry is not None:
            self.hits += 1
            self._lru.move_to_end(rep)
            return entry, transform
        self.misses += 1
        entry = self._synthesize_entry(rep)
        self._lru[rep] = entry
        self.entries[rep] = entry
        if len(self._lru) > self.max_entries:
            evicted, _ = self._lru.popitem(last=False)
            self.entries.pop(evicted, None)
        return entry, transform

    def _synthesize_entry(self, rep: int) -> DbEntry:
        upper = heuristic_mig(rep, self.num_vars)
        proven = upper.num_gates <= 1
        if self.improve_budget > 0 and upper.num_gates > 1:
            result = ExactSynthesizer(
                conflict_budget=self.improve_budget,
                max_gates=upper.num_gates - 1,
            ).synthesize(rep, self.num_vars, upper_bound=upper)
            if result.mig is not None:
                return DbEntry.from_mig(
                    rep, result.mig, proven=result.proven,
                    conflicts=result.conflicts,
                )
        return DbEntry.from_mig(rep, upper, proven=proven)

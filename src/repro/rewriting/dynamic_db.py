"""On-demand minimum-MIG database for cuts with more than 4 inputs.

Sec. IV of the paper: *"Already for 5 inputs, the enumeration of all NPN
classes becomes impractical, which can be circumvented by considering a
much smaller subset (see, e.g., [9])."*  This module implements that
idea: instead of precomputing all 616 126 NPN-5 classes, entries are
synthesized lazily for exactly the cut functions the rewriter encounters
(the working set of real netlists is tiny), with an LRU-bounded
in-memory tier and an optional persistent tier
(:class:`repro.database.store.NpnStore`), so the first process ever to
see a cut function pays synthesis once and every later lookup — in any
process — is a dict probe.

Each entry starts as a heuristic upper bound
(:func:`repro.exact.heuristic.heuristic_mig`) and can optionally be
tightened by budgeted exact synthesis, either inline (*improve_budget*)
or afterwards by ``migopt db improve`` jobs through the batch runtime
(:func:`repro.database.store.improve_store`).  The class is
interface-compatible with :class:`repro.database.npn_db.NpnDatabase`,
so every rewriting variant works unchanged with ``cut_size=5`` (or 6):

>>> store = NpnStore.open("flows.npn5", num_vars=5)
>>> db5 = DynamicDatabase(num_vars=5, store=store)
>>> optimized = functional_hashing(mig, db5, "BF", cut_size=5)
"""

from __future__ import annotations

from collections import OrderedDict
from pathlib import Path

from ..core.npn import NPNTransform, npn_canonize, npn_canonize_batch
from ..database.npn_db import DbEntry, NpnDatabase
from ..exact.heuristic import heuristic_mig
from ..exact.synthesis import ExactSynthesizer

__all__ = ["DynamicDatabase"]


class DynamicDatabase(NpnDatabase):
    """A lazily populated NPN database for 5- or 6-input functions.

    Three tiers, probed in order:

    1. the in-memory LRU (``max_entries`` classes, also mirrored into
       ``self.entries`` for base-class compatibility);
    2. the persistent store, when one is attached — a dict probe plus a
       deserialization, shared by every process that opens the file;
    3. fresh synthesis (heuristic upper bound, optionally tightened by
       *improve_budget* conflicts of exact search), whose result is
       pushed back into both warmer tiers.

    Counters (drained into :class:`~repro.runtime.metrics.PassMetrics`
    by the rewriters via :meth:`drain_metrics`): ``hits`` in-memory,
    ``store_hits`` persistent-tier, ``misses`` synthesized-from-scratch,
    ``evictions`` LRU evictions.
    """

    def __init__(
        self,
        num_vars: int = 5,
        improve_budget: int = 0,
        max_entries: int = 50000,
        store=None,
    ) -> None:
        if num_vars < 4 or num_vars > 6:
            raise ValueError("DynamicDatabase supports 4 to 6 variables")
        super().__init__([], num_vars)
        if isinstance(store, (str, Path)):
            from ..database.store import NpnStore

            store = NpnStore.open(store, num_vars)
        if store is not None and store.num_vars != num_vars:
            raise ValueError(
                f"store holds {store.num_vars}-var entries, "
                f"database wants {num_vars}"
            )
        self.store = store
        self.improve_budget = improve_budget
        self.max_entries = max_entries
        self._lru: OrderedDict[int, DbEntry] = OrderedDict()
        #: lookups answered from the in-memory LRU
        self.hits = 0
        #: lookups that required fresh synthesis
        self.misses = 0
        #: lookups answered from the persistent store
        self.store_hits = 0
        #: classes dropped from the in-memory LRU (still on disk if stored)
        self.evictions = 0

    @property
    def complete(self) -> bool:  # noqa: D401 — never complete by design
        """Always False: entries exist only for functions seen so far."""
        return False

    # -- the three-tier resolve -------------------------------------------

    def _resolve(self, rep: int) -> DbEntry:
        """Entry for class *rep*: LRU, then store, then synthesis."""
        entry = self._lru.get(rep)
        if entry is not None:
            self.hits += 1
            self._lru.move_to_end(rep)
            return entry
        if self.store is not None:
            entry = self.store.get(rep)
            if entry is not None:
                self.store_hits += 1
                self._admit(rep, entry)
                return entry
        self.misses += 1
        entry = self._synthesize_entry(rep)
        if self.store is not None:
            self.store.put(entry)
            # The store may already hold a better witness (another
            # process got here first); serve the best known.
            entry = self.store.get(rep) or entry
        self._admit(rep, entry)
        return entry

    def _admit(self, rep: int, entry: DbEntry) -> None:
        self._lru[rep] = entry
        self.entries[rep] = entry
        if len(self._lru) > self.max_entries:
            evicted, _ = self._lru.popitem(last=False)
            self.entries.pop(evicted, None)
            self.evictions += 1

    # -- NpnDatabase interface --------------------------------------------

    def lookup(self, tt: int) -> tuple[DbEntry, NPNTransform]:
        """Return (entry, transform); synthesizes the entry on first use."""
        self.lookups += 1
        rep, transform = npn_canonize(tt, self.num_vars)
        return self._resolve(rep), transform

    def lookup_batch(self, tts) -> dict[int, tuple[DbEntry, NPNTransform]]:
        """Batched :meth:`lookup`: canonize in one numpy sweep, then resolve.

        Unlike the static base class — whose table maps classes without
        an entry to ``None`` — a dynamic database synthesizes on miss, so
        the batched rewriting pipeline populates the store exactly as the
        scalar path does and :meth:`~repro.database.npn_db.NpnDatabase.
        lookup_in` never raises for an in-table function.  Tier counters
        fire here at build time (synthesis happens here); ``lookup_in``
        still accounts per-consult ``lookups`` as for the base class.
        """
        tt_list = [int(t) for t in tts]
        table: dict[int, tuple[DbEntry, NPNTransform]] = {}
        for tt, (rep, transform) in zip(
            tt_list, npn_canonize_batch(tt_list, self.num_vars)
        ):
            table[tt] = (self._resolve(rep), transform)
        return table

    # -- synthesis ---------------------------------------------------------

    def _synthesize_entry(self, rep: int) -> DbEntry:
        """Best-effort minimum MIG for class *rep*, with sound proven flags.

        Proven semantics, exhaustively:

        * 0- or 1-gate heuristic results are minimal by construction;
        * with no improvement budget, anything larger ships unproven;
        * with a budget, the exact search runs below the upper bound and
          always returns a witness — a strictly smaller MIG found SAT
          (proven), the upper bound with every smaller size refuted
          UNSAT (**proven at its current size** — the search proving
          nothing smaller exists is as good as finding it), or the upper
          bound on budget exhaustion (unproven).
        """
        upper = heuristic_mig(rep, self.num_vars)
        if upper.num_gates <= 1 or self.improve_budget <= 0:
            return DbEntry.from_mig(rep, upper, proven=upper.num_gates <= 1)
        result = ExactSynthesizer(
            conflict_budget=self.improve_budget,
            max_gates=upper.num_gates - 1,
        ).synthesize(rep, self.num_vars, upper_bound=upper)
        return DbEntry.from_mig(
            rep, result.mig, proven=result.proven, conflicts=result.conflicts,
        )

    # -- observability -----------------------------------------------------

    def drain_metrics(self, metrics) -> None:
        """Fold tier counters into *metrics* and reset them.

        Drain semantics (add then zero) so per-step
        :class:`~repro.runtime.metrics.PassMetrics` snapshots merged by
        ``migopt flow --metrics`` count each lookup exactly once.
        """
        metrics.store_hits += self.hits
        metrics.store_disk_hits += self.store_hits
        metrics.store_synth += self.misses
        metrics.store_evictions += self.evictions
        self.hits = self.misses = self.store_hits = self.evictions = 0

    def stats(self) -> dict:
        """Counters snapshot, including the attached store's (if any)."""
        out = {
            "num_vars": self.num_vars,
            "memory_entries": len(self._lru),
            "hits": self.hits,
            "misses": self.misses,
            "store_hits": self.store_hits,
            "evictions": self.evictions,
        }
        if self.store is not None:
            out["store"] = self.store.stats()
        return out

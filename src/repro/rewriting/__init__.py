"""Functional hashing: MIG size optimization by cut rewriting (Sec. IV)."""

from .engine import VARIANTS, RewriteStats, functional_hashing
from .top_down import rewrite_top_down
from .bottom_up import rewrite_bottom_up
from .ffr import cut_is_fanout_free, ffr_of_node, ffr_partition, ffr_roots
from .dynamic_db import DynamicDatabase

__all__ = [
    "functional_hashing",
    "VARIANTS",
    "RewriteStats",
    "rewrite_top_down",
    "rewrite_bottom_up",
    "ffr_partition",
    "ffr_roots",
    "ffr_of_node",
    "cut_is_fanout_free",
    "DynamicDatabase",
]

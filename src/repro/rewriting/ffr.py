"""Fanout-free regions of an MIG (Sec. IV-C of the paper).

A fanout-free region (FFR) is a maximal cone in which every node other
than the region's root has exactly one fanout, and that fanout lies
inside the region.  The paper's F-variants apply functional hashing per
FFR; replacing a cut whose internal nodes all stay within one FFR can
never duplicate shared logic.

Two equivalent implementations are possible (the paper names both): (a)
partition first and rewrite per region, or (b) keep the whole network but
discard cuts containing internal nodes with external fanout.  The
rewriting engine uses (b); this module provides the explicit partition —
used for statistics, tests, and the region-level API.
"""

from __future__ import annotations

from ..core.mig import Mig

__all__ = ["ffr_roots", "ffr_partition", "ffr_of_node", "cut_is_fanout_free"]


def ffr_roots(mig: Mig, fanout: list[int] | None = None) -> list[int]:
    """Gate nodes that are roots of fanout-free regions.

    A gate is an FFR root when it drives an output or has fanout other
    than exactly one.
    """
    if fanout is None:
        fanout = mig.fanout_counts()
    po_nodes = {s >> 1 for s in mig.outputs}
    return [
        node
        for node in mig.gates()
        if node in po_nodes or fanout[node] != 1
    ]


def ffr_of_node(mig: Mig, root: int, fanout: list[int] | None = None) -> list[int]:
    """Gates of the FFR rooted at *root*, in topological order.

    Includes *root*; descends only through fanins whose fanout is 1.
    """
    if fanout is None:
        fanout = mig.fanout_counts()
    members: set[int] = set()
    stack = [root]
    while stack:
        node = stack.pop()
        if node in members or not mig.is_gate(node):
            continue
        members.add(node)
        for s in mig.fanins(node):
            child = s >> 1
            if mig.is_gate(child) and fanout[child] == 1:
                stack.append(child)
    return sorted(members)


def ffr_partition(mig: Mig) -> dict[int, list[int]]:
    """Partition all reachable gates into FFRs: ``{root: member_gates}``."""
    fanout = mig.fanout_counts()
    partition: dict[int, list[int]] = {}
    for root in ffr_roots(mig, fanout):
        partition[root] = ffr_of_node(mig, root, fanout)
    return partition


def cut_is_fanout_free(
    mig: Mig, root: int, leaves: tuple[int, ...], fanout: list[int]
) -> bool:
    """True if every internal node of the cut except the root has fanout 1.

    This is the admissibility condition of the F-variants: such a cut can
    be replaced without duplicating logic used elsewhere.
    """
    leaf_set = set(leaves)
    stack = [s >> 1 for s in mig.fanins(root)]
    seen = {root}
    while stack:
        node = stack.pop()
        if node in leaf_set or node == 0 or node in seen:
            continue
        if not mig.is_gate(node):
            return False  # malformed cut; treat as inadmissible
        if fanout[node] != 1:
            return False
        seen.add(node)
        stack.extend(s >> 1 for s in mig.fanins(node))
    return True

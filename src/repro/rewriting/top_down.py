"""Top-down functional hashing (Algorithm 1 of the paper).

Starting from every output, the pass looks for the 4-feasible cut of the
current node whose replacement by the precomputed minimum MIG yields the
largest size reduction.  If one exists, the cut's internal nodes are
skipped and optimization recurses on the cut leaves; otherwise the node is
kept and optimization recurses on its fanins.

Variants (Sec. IV / Sec. V-C acronyms):

* plain ``T`` — cuts are admitted regardless of internal fanout.  The
  *estimated* gain assumes all internal nodes disappear, which over-counts
  when internal nodes feed logic outside the cut; those nodes get rebuilt
  elsewhere and the network can *grow* — exactly the size increases the
  paper reports for variant T in Table III.
* ``..F`` (fanout-free) — only cuts whose internal nodes (other than the
  root) have a single fanout are admitted, so the estimate is exact and
  sharing is never duplicated.
* ``..D`` (depth-preserving) — cuts whose replacement would locally
  increase depth are discarded (the paper's "simple heuristic"; the
  *global* depth may still increase when a non-critical path lengthens,
  also noted in the paper).
"""

from __future__ import annotations

import sys

from ..core.cuts import cut_cone, enumerate_cuts
from ..core.mig import CONST0, Mig, make_signal
from ..core.truth_table import tt_extend
from ..database.npn_db import NpnDatabase
from .ffr import cut_is_fanout_free

__all__ = ["rewrite_top_down"]


def rewrite_top_down(
    mig: Mig,
    db: NpnDatabase,
    depth_preserving: bool = False,
    fanout_free: bool = False,
    cut_size: int = 4,
    cut_limit: int = 12,
) -> Mig:
    """Run one top-down functional-hashing pass; returns the optimized MIG."""
    if cut_size > db.num_vars:
        raise ValueError(f"cut size {cut_size} exceeds database arity {db.num_vars}")
    cuts = enumerate_cuts(mig, k=cut_size, cut_limit=cut_limit)
    fanout = mig.fanout_counts()
    levels = mig.levels()
    new = Mig.like(mig)

    memo: dict[int, int] = {0: 0}
    for i in range(1, mig.num_pis + 1):
        memo[i] = make_signal(i)

    limit = sys.getrecursionlimit()
    sys.setrecursionlimit(max(limit, 4 * mig.num_nodes + 1000))

    def best_cut(node: int) -> tuple[tuple[int, ...], int] | None:
        """Pick the admissible cut with the largest estimated reduction."""
        best: tuple[int, tuple[int, ...], int] | None = None
        for leaves in cuts[node]:
            if leaves == (node,) or node in leaves:
                continue
            try:
                internal = cut_cone(mig, node, leaves)
            except ValueError:
                continue
            if fanout_free and not cut_is_fanout_free(mig, node, leaves, fanout):
                continue
            tt = mig.cut_function(node, leaves)
            tt4 = tt_extend(tt, len(leaves), db.num_vars)
            try:
                entry, _ = db.lookup(tt4)
            except KeyError:
                continue
            gain = len(internal) - entry.size
            if gain <= 0:
                continue
            if depth_preserving:
                leaf_levels = [levels[leaf] for leaf in leaves]
                leaf_levels += [0] * (db.num_vars - len(leaves))
                new_level = db.instantiated_depth(tt4, leaf_levels)
                if new_level > levels[node]:
                    continue
            if best is None or gain > best[0]:
                best = (gain, leaves, tt4)
        if best is None:
            return None
        return best[1], best[2]

    def opt(node: int) -> int:
        cached = memo.get(node)
        if cached is not None:
            return cached
        choice = best_cut(node)
        if choice is not None:
            leaves, tt4 = choice
            leaf_signals = [opt(leaf) for leaf in leaves]
            leaf_signals += [CONST0] * (db.num_vars - len(leaves))
            signal = db.rebuild(new, tt4, leaf_signals)
        else:
            a, b, c = mig.fanins(node)
            signal = new.maj(
                opt(a >> 1) ^ (a & 1),
                opt(b >> 1) ^ (b & 1),
                opt(c >> 1) ^ (c & 1),
            )
        memo[node] = signal
        return signal

    try:
        for s, name in zip(mig.outputs, mig.output_names):
            new.add_po(opt(s >> 1) ^ (s & 1), name)
    finally:
        sys.setrecursionlimit(limit)
    return new.cleanup()

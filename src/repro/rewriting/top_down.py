"""Top-down functional hashing (Algorithm 1 of the paper).

Starting from every output, the pass looks for the 4-feasible cut of the
current node whose replacement by the precomputed minimum MIG yields the
largest size reduction.  If one exists, the cut's internal nodes are
skipped and optimization continues on the cut leaves; otherwise the node
is kept and optimization continues on its fanins.

Variants (Sec. IV / Sec. V-C acronyms):

* plain ``T`` — cuts are admitted regardless of internal fanout.  The
  *estimated* gain assumes all internal nodes disappear, which over-counts
  when internal nodes feed logic outside the cut; those nodes get rebuilt
  elsewhere and the network can *grow* — exactly the size increases the
  paper reports for variant T in Table III.
* ``..F`` (fanout-free) — only cuts whose internal nodes (other than the
  root) have a single fanout are admitted, so the estimate is exact and
  sharing is never duplicated.
* ``..D`` (depth-preserving) — cuts whose replacement would locally
  increase depth are discarded (the paper's "simple heuristic"; the
  *global* depth may still increase when a non-critical path lengthens,
  also noted in the paper).

Hot-path engineering (docs/PERFORMANCE.md): the traversal uses an
explicit work stack instead of recursion (no ``sys.setrecursionlimit``
games, deep chain MIGs are fine), cut truth tables come from the
:class:`~repro.core.cuts.CutSet` incremental memo, the F-variants
enumerate only fanout-free cuts (shared gates become leaves, so no
per-cut admissibility walk runs), and every event is counted in an
optional :class:`~repro.runtime.metrics.PassMetrics`.
"""

from __future__ import annotations

from ..core.cuts import cut_cone_nodes, enumerate_cut_set
from ..core.mig import CONST0, Mig, make_signal
from ..core.truth_table import tt_extend
from ..database.npn_db import NpnDatabase
from ..runtime.metrics import PassMetrics
from .batch import prepare_lookup_table, resolve_batch

__all__ = ["rewrite_top_down"]


def rewrite_top_down(
    mig: Mig,
    db: NpnDatabase,
    depth_preserving: bool = False,
    fanout_free: bool = False,
    cut_size: int = 4,
    cut_limit: int = 12,
    batch="auto",
    metrics: PassMetrics | None = None,
) -> Mig:
    """Run one top-down functional-hashing pass; returns the optimized MIG.

    ``batch`` selects the array-native precompute (see
    :mod:`repro.rewriting.batch`); every setting chooses byte-identical
    rewrites — only where the truth-table and NPN arithmetic runs moves.
    """
    if cut_size > db.num_vars:
        raise ValueError(f"cut size {cut_size} exceeds database arity {db.num_vars}")
    if metrics is None:
        metrics = PassMetrics()
    fanout = mig.fanout_counts()
    levels = mig.levels()
    # Resolved *before* enumeration so the merge loop can record the
    # batch program inline (see repro.core.cuts._CutProgram).
    function_batch, lookup_batch = resolve_batch(
        batch, mig.num_gates, max(levels, default=0)
    )
    with metrics.phase("enumerate"):
        # F-variants enumerate only fanout-free cuts (shared gates become
        # leaves), so no per-cut admissibility walk is needed later.
        cuts = enumerate_cut_set(
            mig,
            k=cut_size,
            cut_limit=cut_limit,
            metrics=metrics,
            ffr_fanout=fanout if fanout_free else None,
            compile_functions=function_batch,
        )
    with metrics.phase("batch"):
        table = prepare_lookup_table(
            cuts, db, function_batch, lookup_batch, metrics
        )
    if table is None:
        db_lookup = db.lookup
    else:
        db_lookup = lambda tt: db.lookup_in(tt, table)  # noqa: E731
    new = Mig.like(mig)

    memo: dict[int, int] = {0: 0}
    for i in range(1, mig.num_pis + 1):
        memo[i] = make_signal(i)

    def best_cut(node: int):
        """Pick the admissible cut with the largest estimated reduction.

        Returns ``(leaves, entry, transform)`` — the database answer is
        threaded to the emit step so rebuilding pays no second lookup.
        """
        best = None
        for leaves in cuts[node]:
            if leaves == (node,) or node in leaves:
                metrics.reject("trivial")
                continue
            metrics.cuts_considered += 1
            if fanout_free:
                # Restricted enumeration: fanout-free by construction,
                # exact cone size known from the merge.
                cone_gates = cuts.cone_size(node, leaves)
                if cone_gates is None:
                    metrics.reject("invalid-cone")
                    continue
            else:
                internal = cut_cone_nodes(mig, node, leaves, None)
                if internal is None:
                    metrics.reject("invalid-cone")
                    continue
                cone_gates = len(internal)
            tt = cuts.function(node, leaves)
            tt4 = tt_extend(tt, len(leaves), db.num_vars)
            try:
                entry, transform = db_lookup(tt4)
            except KeyError:
                metrics.db_misses += 1
                metrics.reject("db-miss")
                continue
            metrics.db_hits += 1
            gain = cone_gates - entry.size
            if gain <= 0:
                metrics.reject("no-gain")
                continue
            if depth_preserving:
                leaf_levels = [levels[leaf] for leaf in leaves]
                leaf_levels += [0] * (db.num_vars - len(leaves))
                new_level = db.instantiated_depth_entry(entry, transform, leaf_levels)
                if new_level > levels[node]:
                    metrics.reject("depth-increase")
                    continue
            metrics.cuts_admitted += 1
            if best is None or gain > best[0]:
                best = (gain, leaves, entry, transform)
        if best is None:
            return None
        return best[1], best[2], best[3]

    # Iterative replacement for the natural recursion: each node is
    # visited twice — first to decide (best cut vs. structural copy) and
    # schedule its dependencies, then to emit its signal once all
    # dependencies are memoized.  The chosen cut is cached between the
    # two visits so best_cut runs at most once per node.
    choice_cache: dict = {}

    def opt(root: int) -> int:
        stack = [root]
        while stack:
            node = stack[-1]
            if node in memo:
                stack.pop()
                continue
            if node not in choice_cache:
                metrics.nodes_visited += 1
                choice_cache[node] = best_cut(node)
            choice = choice_cache[node]
            if choice is not None:
                deps = list(choice[0])
            else:
                deps = [s >> 1 for s in mig.fanins(node)]
            missing = [d for d in deps if d not in memo]
            if missing:
                stack.extend(missing)
                continue
            if choice is not None:
                leaves, entry, transform = choice
                leaf_signals = [memo[leaf] for leaf in leaves]
                leaf_signals += [CONST0] * (db.num_vars - len(leaves))
                signal = db.rebuild_entry(new, entry, transform, leaf_signals)
                metrics.nodes_rebuilt += 1
            else:
                a, b, c = mig.fanins(node)
                signal = new.maj(
                    memo[a >> 1] ^ (a & 1),
                    memo[b >> 1] ^ (b & 1),
                    memo[c >> 1] ^ (c & 1),
                )
            memo[node] = signal
            stack.pop()
        return memo[root]

    with metrics.phase("rewrite"):
        for s, name in zip(mig.outputs, mig.output_names):
            new.add_po(opt(s >> 1) ^ (s & 1), name)
    with metrics.phase("cleanup"):
        # The construction network only ever saw new.maj, so the
        # renumbering fast path is byte-identical to cleanup().
        result = new.compact()
    # Kernel counters of the construction network and the cleaned copy.
    metrics.record_network(new)
    metrics.record_network(result)
    if hasattr(db, "drain_metrics"):
        # Dynamic databases account their tier counters per pass.
        db.drain_metrics(metrics)
    return result

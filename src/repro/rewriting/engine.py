"""Variant dispatcher for functional hashing (Sec. V-C acronyms).

The paper evaluates five variants named by letters: Top-down or Bottom-up,
optional Fanout-free-region locality, optional Depth-preserving heuristic.
This module exposes them under the paper's acronyms::

    T    top-down, global
    TD   top-down, depth-preserving
    TF   top-down, per fanout-free region
    TFD  top-down, per FFR, depth-preserving
    B    bottom-up, global
    BD   bottom-up, depth-preserving
    BF   bottom-up, per fanout-free region
    BFD  bottom-up, per FFR, depth-preserving

(The paper reports TF, T, TFD, TD and BF in Tables III/IV; the remaining
combinations are provided for completeness.)
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..core.mig import Mig
from ..core.npn import canonize_cache_info
from ..database.npn_db import NpnDatabase
from ..runtime.metrics import PassMetrics
from .bottom_up import rewrite_bottom_up
from .top_down import rewrite_top_down

__all__ = ["VARIANTS", "functional_hashing", "RewriteStats"]

VARIANTS = ("T", "TD", "TF", "TFD", "B", "BD", "BF", "BFD")


@dataclass(frozen=True)
class RewriteStats:
    """Before/after statistics of one functional-hashing run."""

    variant: str
    size_before: int
    depth_before: int
    size_after: int
    depth_after: int
    runtime: float
    metrics: PassMetrics = field(default_factory=PassMetrics, compare=False)

    @property
    def size_ratio(self) -> float:
        """new/old size — the paper's improvement metric (lower is better)."""
        if self.size_before == 0:
            return 1.0
        return self.size_after / self.size_before

    @property
    def depth_ratio(self) -> float:
        """new/old depth."""
        if self.depth_before == 0:
            return 1.0
        return self.depth_after / self.depth_before


def _parse_variant(variant: str) -> tuple[bool, bool, bool]:
    """Return (top_down, fanout_free, depth_preserving) for an acronym."""
    name = variant.upper()
    if name not in VARIANTS:
        raise ValueError(f"unknown variant {variant!r}; expected one of {VARIANTS}")
    top_down = name.startswith("T")
    fanout_free = "F" in name
    depth_preserving = name.endswith("D")
    return top_down, fanout_free, depth_preserving


def functional_hashing(
    mig: Mig,
    db: NpnDatabase,
    variant: str = "BF",
    cut_size: int = 4,
    cut_limit: int = 8,
    candidate_limit: int = 3,
    batch="auto",
    metrics: PassMetrics | None = None,
    return_stats: bool = False,
) -> Mig | tuple[Mig, RewriteStats]:
    """Apply one functional-hashing pass in the given paper variant.

    With ``return_stats=True`` the result is ``(mig, RewriteStats)`` where
    the stats carry the populated :class:`PassMetrics` of the pass; sizes
    and depths are only measured in that mode, keeping the plain call free
    of extra traversals.

    ``batch`` selects the array-native precompute pipeline (see
    :mod:`repro.rewriting.batch` for the policy); it never changes which
    rewrites are chosen, only how their arithmetic is evaluated.
    """
    top_down, fanout_free, depth_preserving = _parse_variant(variant)
    if metrics is None:
        metrics = PassMetrics(variant=variant.upper())
    elif not metrics.variant:
        metrics.variant = variant.upper()
    npn_before = canonize_cache_info()
    start = time.perf_counter()
    if top_down:
        result = rewrite_top_down(
            mig,
            db,
            depth_preserving=depth_preserving,
            fanout_free=fanout_free,
            cut_size=cut_size,
            cut_limit=cut_limit,
            batch=batch,
            metrics=metrics,
        )
    else:
        result = rewrite_bottom_up(
            mig,
            db,
            depth_preserving=depth_preserving,
            fanout_free=fanout_free,
            cut_size=cut_size,
            cut_limit=cut_limit,
            candidate_limit=candidate_limit,
            batch=batch,
            metrics=metrics,
        )
    runtime = time.perf_counter() - start
    npn_after = canonize_cache_info()
    metrics.npn_cache_hits += npn_after.hits - npn_before.hits
    metrics.npn_cache_misses += npn_after.misses - npn_before.misses
    if not return_stats:
        return result
    stats = RewriteStats(
        variant=variant.upper(),
        size_before=mig.num_gates,
        depth_before=mig.depth(),
        size_after=result.num_gates,
        depth_after=result.depth(),
        runtime=runtime,
        metrics=metrics,
    )
    return result, stats

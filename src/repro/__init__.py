"""repro — Majority-Inverter Graph optimization with functional hashing.

A from-scratch Python reproduction of M. Soeken, L. G. Amarù,
P.-E. Gaillardon, G. De Micheli, *Optimizing Majority-Inverter Graphs
with Functional Hashing*, DATE 2016.

Public API highlights:

* :class:`repro.core.Mig` — the Majority-Inverter Graph data structure.
* :func:`repro.rewriting.functional_hashing` — the paper's size
  optimization in all its variants (T, TD, TF, TFD, B, BD, BF, BFD).
* :class:`repro.database.NpnDatabase` — precomputed minimum MIGs for all
  222 four-input NPN classes.
* :func:`repro.exact.synthesize_exact` — SAT-based exact synthesis
  (Sec. III of the paper).
* :func:`repro.opt.optimize_depth` — the algebraic depth optimization the
  paper uses to produce its baselines.
* :func:`repro.mapping.map_mig` — cut-based technology mapping (Table IV).
* :mod:`repro.generators` — structural equivalents of the EPFL arithmetic
  benchmarks.
* :class:`repro.runtime.Budget` / :func:`repro.runtime.verify_rewrite` —
  the fault-tolerant runtime: shared time/conflict budgets, post-pass
  verification with rollback, crash-safe artifacts (docs/ROBUSTNESS.md).
"""

from .core import Mig, TruthTable, check_equivalence, npn_canonize
from .database import NpnDatabase
from .rewriting import VARIANTS, functional_hashing
from .exact import synthesize_exact
from .opt import optimize_depth
from .mapping import map_mig
from .runtime import Budget, verify_rewrite

__version__ = "1.1.0"

__all__ = [
    "Mig",
    "TruthTable",
    "check_equivalence",
    "npn_canonize",
    "NpnDatabase",
    "functional_hashing",
    "VARIANTS",
    "synthesize_exact",
    "optimize_depth",
    "map_mig",
    "Budget",
    "verify_rewrite",
    "__version__",
]

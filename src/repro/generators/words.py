"""Word-level circuit construction helpers over MIGs.

The EPFL arithmetic benchmarks are not redistributable in this offline
environment, so the 8 instances are regenerated structurally
(DESIGN.md §4).  This module provides the word-level building blocks —
adders, subtractors, comparators, shifters, multiplexers — from which
:mod:`repro.generators.epfl` assembles the actual benchmark circuits.

Words are little-endian lists of MIG signals (``word[0]`` is the LSB).
"""

from __future__ import annotations

from ..core.mig import CONST0, CONST1, Mig, signal_not

__all__ = ["WordBuilder"]


class WordBuilder:
    """Constructs word-level datapath logic on an underlying MIG."""

    def __init__(self, mig: Mig) -> None:
        self.mig = mig

    # -- inputs / constants ----------------------------------------------

    def input_word(self, width: int, prefix: str) -> list[int]:
        """Create *width* primary inputs named ``prefix[i]``."""
        return [self.mig.add_pi(f"{prefix}[{i}]") for i in range(width)]

    def constant_word(self, value: int, width: int) -> list[int]:
        """Encode an integer constant as a signal word."""
        return [CONST1 if (value >> i) & 1 else CONST0 for i in range(width)]

    # -- bit-level --------------------------------------------------------

    def full_adder(self, a: int, b: int, c: int) -> tuple[int, int]:
        """Full adder in three majority gates (Fig. 1 of the paper)."""
        carry = self.mig.maj(a, b, c)
        inner = self.mig.maj(a, b, signal_not(c))
        total = self.mig.maj(signal_not(carry), inner, c)
        return total, carry

    # -- addition / subtraction -------------------------------------------

    def add(self, a: list[int], b: list[int], carry_in: int = CONST0) -> tuple[list[int], int]:
        """Ripple-carry addition; returns (sum word, carry out)."""
        if len(a) != len(b):
            raise ValueError(f"width mismatch: {len(a)} vs {len(b)}")
        carry = carry_in
        out = []
        for bit_a, bit_b in zip(a, b):
            s, carry = self.full_adder(bit_a, bit_b, carry)
            out.append(s)
        return out, carry

    def sub(self, a: list[int], b: list[int]) -> tuple[list[int], int]:
        """Two's-complement subtraction ``a - b``; returns (difference, no_borrow).

        ``no_borrow`` is the adder's carry-out, i.e. ``a >= b`` for
        unsigned operands.
        """
        b_inverted = [signal_not(s) for s in b]
        diff, carry = self.add(a, b_inverted, CONST1)
        return diff, carry

    def add_sub(self, a: list[int], b: list[int], subtract: int) -> tuple[list[int], int]:
        """Conditional add/subtract: ``a + b`` or ``a - b`` when *subtract*."""
        b_cond = [self.mig.xor(s, subtract) for s in b]
        return self.add(a, b_cond, subtract)

    def increment(self, a: list[int]) -> list[int]:
        """``a + 1`` (mod ``2**width``)."""
        out, _ = self.add(a, self.constant_word(1, len(a)))
        return out

    # -- comparison ---------------------------------------------------------

    def geq(self, a: list[int], b: list[int]) -> int:
        """Unsigned ``a >= b`` via the borrow chain ``<a' b borrow>``."""
        if len(a) != len(b):
            raise ValueError(f"width mismatch: {len(a)} vs {len(b)}")
        borrow = CONST0
        for bit_a, bit_b in zip(a, b):
            borrow = self.mig.maj(signal_not(bit_a), bit_b, borrow)
        return signal_not(borrow)

    def equal(self, a: list[int], b: list[int]) -> int:
        """Bitwise equality of two words."""
        acc = CONST1
        for bit_a, bit_b in zip(a, b):
            acc = self.mig.and_(acc, self.mig.xnor(bit_a, bit_b))
        return acc

    # -- selection ------------------------------------------------------------

    def mux_word(self, sel: int, when_true: list[int], when_false: list[int]) -> list[int]:
        """Word-level 2:1 multiplexer."""
        if len(when_true) != len(when_false):
            raise ValueError("mux operand widths differ")
        return [self.mig.ite(sel, t, e) for t, e in zip(when_true, when_false)]

    def max_word(self, a: list[int], b: list[int]) -> tuple[list[int], int]:
        """Unsigned maximum; returns (max(a, b), a_wins)."""
        a_wins = self.geq(a, b)
        return self.mux_word(a_wins, a, b), a_wins

    # -- bitwise -----------------------------------------------------------------

    def and_word(self, a: list[int], b: list[int]) -> list[int]:
        """Bitwise AND."""
        return [self.mig.and_(x, y) for x, y in zip(a, b)]

    def scalar_and(self, word: list[int], bit: int) -> list[int]:
        """AND every bit of *word* with *bit*."""
        return [self.mig.and_(x, bit) for x in word]

    def shift_left_const(self, word: list[int], amount: int) -> list[int]:
        """Logical left shift by a constant, width preserved."""
        return self.constant_word(0, amount) + word[: len(word) - amount]

    def shift_right_const(self, word: list[int], amount: int) -> list[int]:
        """Logical right shift by a constant, width preserved."""
        return word[amount:] + self.constant_word(0, amount)

    # -- multiplication ---------------------------------------------------------

    def multiply(self, a: list[int], b: list[int]) -> list[int]:
        """Array multiplier; result has ``len(a) + len(b)`` bits."""
        wa, wb = len(a), len(b)
        acc = self.constant_word(0, wa + wb)
        for j, bit_b in enumerate(b):
            partial = self.scalar_and(a, bit_b)
            padded = self.constant_word(0, j) + partial + self.constant_word(
                0, wa + wb - wa - j
            )
            acc, _ = self.add(acc, padded)
        return acc

    def square(self, a: list[int]) -> list[int]:
        """Squarer: ``a * a`` with ``2 * len(a)`` output bits."""
        return self.multiply(a, a)

    # -- division / roots -----------------------------------------------------------

    def divide(self, dividend: list[int], divisor: list[int]) -> tuple[list[int], list[int]]:
        """Restoring division; returns (quotient, remainder).

        Division by zero yields quotient all-ones and remainder equal to
        the dividend, as in typical hardware dividers.
        """
        width = len(dividend)
        if len(divisor) != width:
            raise ValueError("divide expects equal widths")
        remainder = self.constant_word(0, width)
        quotient: list[int] = [CONST0] * width
        for i in range(width - 1, -1, -1):
            remainder = [dividend[i]] + remainder[:-1]
            diff, no_borrow = self.sub(remainder, divisor)
            quotient[i] = no_borrow
            remainder = self.mux_word(no_borrow, diff, remainder)
        return quotient, remainder

    def isqrt(self, value: list[int]) -> list[int]:
        """Integer square root (restoring digit recurrence).

        *value* must have even width ``2w``; the result has ``w`` bits.
        """
        width = len(value)
        if width % 2:
            raise ValueError("isqrt expects an even input width")
        half = width // 2
        root = self.constant_word(0, half)
        remainder = self.constant_word(0, width)
        for i in range(half - 1, -1, -1):
            # Bring down two bits of the radicand: rem = (rem << 2) | pair.
            remainder = value[2 * i : 2 * i + 2] + remainder[:-2]
            # Trial subtrahend at the current scale: trial = 4 * root + 1.
            trial = self.constant_word(0, width)
            for j, bit in enumerate(root):
                if j + 2 < width:
                    trial[j + 2] = bit
            trial[0] = CONST1
            diff, no_borrow = self.sub(remainder, trial)
            remainder = self.mux_word(no_borrow, diff, remainder)
            root = self.shift_left_const(root, 1)
            root[0] = no_borrow
        return root

"""Benchmark circuit generators (EPFL suite equivalents).

Two halves mirror the EPFL benchmark suite: the 8 arithmetic instances
the paper evaluates on (:data:`SUITE_SPECS`) and the random/control half
(:data:`CONTROL_SPECS`).  :data:`GENERATORS` is the merged registry the
runtime layers (worker, CLI, serve, sweeps) resolve ``generate`` names
against.
"""

from .words import WordBuilder
from .random_layered import layered_mig
from .epfl import (
    SUITE_SPECS,
    adder,
    arithmetic_suite,
    divisor,
    log2,
    max4,
    multiplier,
    sine,
    square,
    square_root,
)
from .epfl_control import (
    CONTROL_SPECS,
    arbiter,
    control_suite,
    dec,
    int2float,
    priority,
    router,
    voter,
)

#: every generator the runtime can resolve by name; the two halves are
#: disjoint, so a plain merge cannot shadow anything.
GENERATORS = {**SUITE_SPECS, **CONTROL_SPECS}


def resolve_generator(name: str, width: int | None = None, full_size: bool = False):
    """Resolve a registry *name* to a generated MIG.

    The one place worker, CLI, serve, and sweeps all turn a ``generate``
    network spec into a circuit.  *width* scales the instance's single
    size parameter (``width`` for the datapath generators, ``count`` for
    the voter); generators without one (the router's rows×cols) reject
    an override instead of misapplying it.
    """
    if name not in GENERATORS:
        raise ValueError(
            f"unknown generator {name!r}; choose from {sorted(GENERATORS)}"
        )
    _, generator, full_kwargs, scaled_kwargs = GENERATORS[name]
    kwargs = dict(full_kwargs if full_size else scaled_kwargs)
    if width is not None:
        if "width" in kwargs:
            kwargs = {"width": int(width)}
        elif "count" in kwargs:
            kwargs = {"count": int(width)}
        else:
            raise ValueError(
                f"generator {name!r} takes no width override "
                f"(its parameters are {sorted(kwargs)})"
            )
    return generator(**kwargs)

__all__ = [
    "WordBuilder",
    "layered_mig",
    "SUITE_SPECS",
    "CONTROL_SPECS",
    "GENERATORS",
    "resolve_generator",
    "arithmetic_suite",
    "control_suite",
    "adder",
    "arbiter",
    "dec",
    "divisor",
    "int2float",
    "log2",
    "max4",
    "multiplier",
    "priority",
    "router",
    "sine",
    "square",
    "square_root",
    "voter",
]

"""Benchmark circuit generators (EPFL arithmetic suite equivalents)."""

from .words import WordBuilder
from .random_layered import layered_mig
from .epfl import (
    SUITE_SPECS,
    adder,
    arithmetic_suite,
    divisor,
    log2,
    max4,
    multiplier,
    sine,
    square,
    square_root,
)

__all__ = [
    "WordBuilder",
    "layered_mig",
    "SUITE_SPECS",
    "arithmetic_suite",
    "adder",
    "divisor",
    "log2",
    "max4",
    "multiplier",
    "sine",
    "square",
    "square_root",
]

"""Structural regeneration of the EPFL arithmetic benchmark suite.

The paper evaluates on the 8 arithmetic instances of the EPFL benchmark
suite (lsi.epfl.ch/benchmarks).  The original AIG/Verilog files are not
redistributable here, so each instance is regenerated as an MIG with the
same I/O signature and the same kind of internal structure
(DESIGN.md §4): ripple carry chains, array partial-product reduction,
restoring digit recurrences, compare-select trees, and shift-add
(CORDIC / squaring-log) datapaths — the local structures that give these
benchmarks their optimization profile.

Every generator takes a width parameter defaulting to the paper's size;
the benchmark harness uses reduced widths by default so the pure-Python
flow finishes in minutes (pass ``--full`` there for paper sizes).

========== ========= ============================= =====================
Instance   Paper I/O Generator                     Default width params
========== ========= ============================= =====================
Adder      256/129   :func:`adder`                 width=128
Divisor    128/128   :func:`divisor`               width=64
Log2       32/32     :func:`log2`                  width=32
Max        512/130   :func:`max4`                  width=128
Multiplier 128/128   :func:`multiplier`            width=64
Sine       24/25     :func:`sine`                  width=24
Square-root 128/64   :func:`square_root`           width=64
Square     64/128    :func:`square`                width=64
========== ========= ============================= =====================
"""

from __future__ import annotations

import math

from ..core.mig import CONST0, Mig, signal_not
from .words import WordBuilder

__all__ = [
    "adder",
    "divisor",
    "log2",
    "max4",
    "multiplier",
    "sine",
    "square_root",
    "square",
    "arithmetic_suite",
    "SUITE_SPECS",
]


def adder(width: int = 128) -> Mig:
    """Ripple-carry adder: two *width*-bit inputs, ``width + 1`` outputs."""
    mig = Mig(name=f"adder{width}")
    words = WordBuilder(mig)
    a = words.input_word(width, "a")
    b = words.input_word(width, "b")
    total, carry = words.add(a, b)
    for i, s in enumerate(total):
        mig.add_po(s, f"s[{i}]")
    mig.add_po(carry, "cout")
    return mig


def divisor(width: int = 64) -> Mig:
    """Restoring divider: ``2 * width`` inputs, ``2 * width`` outputs."""
    mig = Mig(name=f"div{width}")
    words = WordBuilder(mig)
    dividend = words.input_word(width, "n")
    divisor_word = words.input_word(width, "d")
    quotient, remainder = words.divide(dividend, divisor_word)
    for i, s in enumerate(quotient):
        mig.add_po(s, f"q[{i}]")
    for i, s in enumerate(remainder):
        mig.add_po(s, f"r[{i}]")
    return mig


def multiplier(width: int = 64) -> Mig:
    """Array multiplier: ``2 * width`` inputs, ``2 * width`` outputs."""
    mig = Mig(name=f"mult{width}")
    words = WordBuilder(mig)
    a = words.input_word(width, "a")
    b = words.input_word(width, "b")
    product = words.multiply(a, b)
    for i, s in enumerate(product):
        mig.add_po(s, f"p[{i}]")
    return mig


def square(width: int = 64) -> Mig:
    """Squarer: *width* inputs, ``2 * width`` outputs."""
    mig = Mig(name=f"square{width}")
    words = WordBuilder(mig)
    a = words.input_word(width, "a")
    product = words.square(a)
    for i, s in enumerate(product):
        mig.add_po(s, f"p[{i}]")
    return mig


def square_root(width: int = 64) -> Mig:
    """Restoring integer square root: ``2 * width`` inputs, *width* outputs."""
    mig = Mig(name=f"sqrt{width}")
    words = WordBuilder(mig)
    value = words.input_word(2 * width, "x")
    root = words.isqrt(value)
    for i, s in enumerate(root):
        mig.add_po(s, f"r[{i}]")
    return mig


def max4(width: int = 128) -> Mig:
    """Maximum of four *width*-bit words plus 2-bit argmax index."""
    mig = Mig(name=f"max{width}")
    words = WordBuilder(mig)
    inputs = [words.input_word(width, name) for name in ("a", "b", "c", "d")]
    m01, a_wins = words.max_word(inputs[0], inputs[1])
    m23, c_wins = words.max_word(inputs[2], inputs[3])
    second_pair = signal_not(words.geq(m01, m23))
    best = words.mux_word(second_pair, m23, m01)
    idx0 = mig.ite(second_pair, signal_not(c_wins), signal_not(a_wins))
    for i, s in enumerate(best):
        mig.add_po(s, f"m[{i}]")
    mig.add_po(idx0, "idx[0]")
    mig.add_po(second_pair, "idx[1]")
    return mig


def log2(width: int = 32, fraction_bits: int | None = None) -> Mig:
    """Fixed-point base-2 logarithm via normalize-and-square.

    The integer part is the leading-one position; fraction bits come from
    the classic iterated-squaring recurrence, one squarer per bit.  Input
    and output are *width* bits wide (integer part occupies the top
    ``ceil(log2(width))`` output bits).
    """
    mig = Mig(name=f"log2_{width}")
    words = WordBuilder(mig)
    x = words.input_word(width, "x")
    index_bits = max(1, (width - 1).bit_length())
    if fraction_bits is None:
        fraction_bits = width - index_bits

    # Leading-one detection (priority encoder, MSB first).
    seen = CONST0
    onehot = []
    for i in range(width - 1, -1, -1):
        hit = mig.and_(x[i], signal_not(seen))
        onehot.append((i, hit))
        seen = mig.or_(seen, x[i])
    # Integer part = binary encoding of the leading-one position.
    int_part = []
    for b in range(index_bits):
        acc = CONST0
        for i, hit in onehot:
            if (i >> b) & 1:
                acc = mig.or_(acc, hit)
        int_part.append(acc)
    # Normalizing left-shift amount: width - 1 - position.
    shift = []
    for b in range(index_bits):
        acc = CONST0
        for i, hit in onehot:
            if ((width - 1 - i) >> b) & 1:
                acc = mig.or_(acc, hit)
        shift.append(acc)
    # Barrel shifter: mantissa m = x << shift, so m in [2^(w-1), 2^w).
    mantissa = list(x)
    for b in range(index_bits):
        shifted = words.shift_left_const(mantissa, 1 << b)
        mantissa = words.mux_word(shift[b], shifted, mantissa)

    # Fraction bits: square the mantissa; a result >= 2 yields bit 1.
    fraction = []
    for _ in range(fraction_bits):
        squared = words.multiply(mantissa, mantissa)  # 2*width bits
        top_bit = squared[2 * width - 1]
        fraction.append(top_bit)
        # Renormalize: take the top word, shifted one less when < 2.
        high = squared[width:]  # m^2 / 2^width, in [2^(width-2), 2^width)
        low_shift = squared[width - 1 :][:width]
        mantissa = words.mux_word(top_bit, high, low_shift)

    out = list(reversed(fraction)) + int_part  # LSB..MSB: fraction then integer
    for i, s in enumerate(out[:width]):
        mig.add_po(s, f"y[{i}]")
    return mig


def sine(width: int = 24) -> Mig:
    """Fixed-point sine via CORDIC rotation; *width* inputs, ``width + 1`` outputs.

    The input angle covers ``[0, pi/2)`` scaled to the full input range;
    the output is ``sin`` scaled to ``width + 1`` bits.
    """
    mig = Mig(name=f"sine{width}")
    words = WordBuilder(mig)
    angle = words.input_word(width, "a")
    guard = 3
    w = width + guard  # internal precision, signed
    scale = 1 << (width - 1)

    def fixed(value: float) -> int:
        return int(round(value * scale)) & ((1 << w) - 1)

    # Gain-compensated start vector: x = K, y = 0; z = angle * (pi/2 / 2^width).
    iterations = width
    gain = 1.0
    for i in range(iterations):
        gain *= math.sqrt(1.0 + 2.0 ** (-2 * i))
    x = words.constant_word(fixed(1.0 / gain), w)
    y = words.constant_word(0, w)
    # z is the residual angle in radians (fixed point, scale 2^(width-1)).
    # angle input is in units of (pi/2) / 2^width.
    z = [CONST0] * w
    angle_scale = (math.pi / 2.0) / (1 << width)
    for i in range(width):
        # Each input bit contributes angle_scale * 2^i radians; accumulate
        # as a constant multiple of the input bits using conditional adds.
        contrib = fixed(angle_scale * (1 << i))
        addend = [
            words.mig.and_(angle[i], bit)
            for bit in words.constant_word(contrib, w)
        ]
        z, _ = words.add(z, addend)

    def arithmetic_shift_right(word: list[int], amount: int) -> list[int]:
        if amount == 0:
            return list(word)
        sign = word[-1]
        return word[amount:] + [sign] * amount

    for i in range(iterations):
        rotate_neg = z[-1]  # z < 0: rotate clockwise
        d_pos = signal_not(rotate_neg)
        x_shift = arithmetic_shift_right(x, i)
        y_shift = arithmetic_shift_right(y, i)
        atan_const = words.constant_word(fixed(math.atan(2.0 ** (-i))), w)
        new_x, _ = words.add_sub(x, y_shift, d_pos)
        new_y, _ = words.add_sub(y, x_shift, rotate_neg)
        new_z, _ = words.add_sub(z, atan_const, d_pos)
        x, y, z = new_x, new_y, new_z

    # sin = y; emit width+1 bits (value plus sign/overflow guard bit).
    for i in range(width + 1):
        mig.add_po(y[i] if i < len(y) else y[-1], f"s[{i}]")
    return mig


#: name -> (paper I/O, generator, paper-width kwargs, scaled-width kwargs)
SUITE_SPECS = {
    "adder": ((256, 129), adder, {"width": 128}, {"width": 32}),
    "divisor": ((128, 128), divisor, {"width": 64}, {"width": 12}),
    "log2": ((32, 32), log2, {"width": 32}, {"width": 10}),
    "max": ((512, 130), max4, {"width": 128}, {"width": 24}),
    "multiplier": ((128, 128), multiplier, {"width": 64}, {"width": 12}),
    "sine": ((24, 25), sine, {"width": 24}, {"width": 10}),
    "square-root": ((128, 64), square_root, {"width": 64}, {"width": 10}),
    "square": ((64, 128), square, {"width": 64}, {"width": 14}),
}


def arithmetic_suite(full_size: bool = False) -> dict[str, Mig]:
    """Generate all 8 instances (paper widths when *full_size*)."""
    suite = {}
    for name, (_, generator, full_kwargs, scaled_kwargs) in SUITE_SPECS.items():
        kwargs = full_kwargs if full_size else scaled_kwargs
        suite[name] = generator(**kwargs)
    return suite

"""Structural regeneration of the EPFL random/control benchmark half.

The paper's evaluation centers on the 8 arithmetic EPFL instances
(:mod:`repro.generators.epfl`), but the suite's other half — the
random/control circuits — stresses a different optimization profile:
priority chains, one-hot decode trees, allocation matrices and wide
voting majorities instead of carry and partial-product arithmetic.
As with the arithmetic half, the original files are not redistributable
here, so each instance is regenerated with the same I/O signature and
the same kind of internal structure.

========== ========= ============================= =====================
Instance   Paper I/O Generator                     Default params
========== ========= ============================= =====================
Arbiter    256/129   :func:`arbiter`               width=128
Dec        8/256     :func:`dec`                   width=8
Int2float  11/7      :func:`int2float`             width=11
Priority   128/8     :func:`priority`              width=128
Router     60/30     :func:`router`                rows=6, cols=5
Voter      1001/1    :func:`voter`                 count=1001
========== ========= ============================= =====================
"""

from __future__ import annotations

from ..core.mig import CONST0, Mig, signal_not
from .words import WordBuilder

__all__ = [
    "arbiter",
    "dec",
    "int2float",
    "priority",
    "router",
    "voter",
    "control_suite",
    "CONTROL_SPECS",
]


def _priority_scan(mig: Mig, bits: list[int]) -> tuple[list[int], int]:
    """First-set-bit scan (index 0 = highest priority).

    Returns the one-hot grant word and the any-bit-set flag — the fixed
    priority chain at the heart of every circuit in this half.
    """
    seen = CONST0
    grants = []
    for bit in bits:
        grants.append(mig.and_(bit, signal_not(seen)))
        seen = mig.or_(seen, bit)
    return grants, seen


def arbiter(width: int = 128) -> Mig:
    """Rotating-priority bus arbiter: ``2 * width`` inputs, ``width + 1`` outputs.

    ``r[i]`` are request lines and ``m[i]`` the rotating-priority mask
    (1 = eligible this round).  Masked requests win by fixed priority;
    when no eligible request exists the arbiter falls through to an
    unmasked scan, so exactly one grant fires whenever any request is up.
    """
    mig = Mig(name=f"arbiter{width}")
    words = WordBuilder(mig)
    req = words.input_word(width, "r")
    mask = words.input_word(width, "m")
    masked = words.and_word(req, mask)
    grant_masked, any_masked = _priority_scan(mig, masked)
    grant_raw, any_req = _priority_scan(mig, req)
    for i in range(width):
        grant = mig.ite(any_masked, grant_masked[i], grant_raw[i])
        mig.add_po(grant, f"g[{i}]")
    mig.add_po(any_req, "valid")
    return mig


def dec(width: int = 8) -> Mig:
    """One-hot decoder: *width* inputs, ``2 ** width`` outputs.

    Built as the classic split-halves tree (decode each address half,
    AND the partial minterms) so interior product terms are shared.
    """
    mig = Mig(name=f"dec{width}")
    words = WordBuilder(mig)
    addr = words.input_word(width, "a")

    def decode(bits: list[int]) -> list[int]:
        if len(bits) == 1:
            return [signal_not(bits[0]), bits[0]]
        half = len(bits) // 2
        low = decode(bits[:half])
        high = decode(bits[half:])
        return [mig.and_(h, l) for h in high for l in low]

    for value, minterm in enumerate(decode(addr)):
        mig.add_po(minterm, f"d[{value}]")
    return mig


def int2float(width: int = 11, exp_bits: int = 3, man_bits: int = 3) -> Mig:
    """Signed integer to tiny float: *width* inputs, ``1 + exp_bits + man_bits`` outputs.

    The input is a two's-complement integer.  The output packs sign,
    a saturating exponent (the magnitude's leading-one position, clamped
    to ``2**exp_bits - 1``) and the *man_bits* magnitude bits right
    below the leading one — leading-one detection feeding a barrel
    extract, the structure that gives EPFL's ``int2float`` its shape.
    """
    mig = Mig(name=f"int2float{width}")
    words = WordBuilder(mig)
    x = words.input_word(width, "x")
    sign = x[width - 1]
    # |x| by conditional two's-complement negation.
    flipped = [mig.xor(bit, sign) for bit in x]
    mag, _ = words.add(flipped, words.constant_word(0, width), carry_in=sign)

    # Leading-one detection, MSB first.
    seen = CONST0
    hits: list[tuple[int, int]] = []  # (bit position, one-hot hit)
    for i in range(width - 1, -1, -1):
        hits.append((i, mig.and_(mag[i], signal_not(seen))))
        seen = mig.or_(seen, mag[i])

    exp_max = (1 << exp_bits) - 1
    exponent = []
    for b in range(exp_bits):
        acc = CONST0
        for pos, hit in hits:
            if (min(pos, exp_max) >> b) & 1:
                acc = mig.or_(acc, hit)
        exponent.append(acc)
    mantissa = []
    for j in range(man_bits):
        # Bit j of the mantissa is |x| at position pos - (man_bits - j).
        acc = CONST0
        for pos, hit in hits:
            src = pos - (man_bits - j)
            if src >= 0:
                acc = mig.or_(acc, mig.and_(hit, mag[src]))
        mantissa.append(acc)

    mig.add_po(sign, "sign")
    for b, bit in enumerate(exponent):
        mig.add_po(bit, f"e[{b}]")
    for j, bit in enumerate(mantissa):
        mig.add_po(bit, f"f[{j}]")
    return mig


def priority(width: int = 128) -> Mig:
    """Priority encoder: *width* inputs, ``ceil(log2 width) + 1`` outputs.

    Emits the binary index of the highest-priority (lowest-index) active
    request plus a valid flag — 128 → 8, the paper signature.
    """
    mig = Mig(name=f"priority{width}")
    words = WordBuilder(mig)
    req = words.input_word(width, "r")
    grants, any_req = _priority_scan(mig, req)
    index_bits = max(1, (width - 1).bit_length())
    for b in range(index_bits):
        acc = CONST0
        for i, grant in enumerate(grants):
            if (i >> b) & 1:
                acc = mig.or_(acc, grant)
        mig.add_po(acc, f"y[{b}]")
    mig.add_po(any_req, "valid")
    return mig


def router(rows: int = 6, cols: int = 5) -> Mig:
    """Separable crossbar allocator: ``2 * rows * cols`` inputs, ``rows * cols`` outputs.

    ``q[i*cols+j]`` requests input port *i* → output port *j*; ``m[...]``
    is the matching rotating-priority mask.  A row stage picks at most
    one output per input (masked priority with unmasked fallback, as in
    :func:`arbiter`), then a column stage picks at most one input per
    output — the two-stage separable allocator found in VC routers.
    """
    mig = Mig(name=f"router{rows}x{cols}")
    words = WordBuilder(mig)
    req = words.input_word(rows * cols, "q")
    mask = words.input_word(rows * cols, "m")

    def cell_stage(row: list[int], row_mask: list[int]) -> list[int]:
        masked = words.and_word(row, row_mask)
        grant_masked, any_masked = _priority_scan(mig, masked)
        grant_raw, _ = _priority_scan(mig, row)
        return [
            mig.ite(any_masked, grant_masked[k], grant_raw[k])
            for k in range(len(row))
        ]

    row_winner = []
    for i in range(rows):
        row = req[i * cols : (i + 1) * cols]
        row_mask = mask[i * cols : (i + 1) * cols]
        row_winner.append(cell_stage(row, row_mask))
    for j in range(cols):
        column = [row_winner[i][j] for i in range(rows)]
        grants, _ = _priority_scan(mig, column)
        for i in range(rows):
            mig.add_po(grants[i], f"g[{i * cols + j}]")
    return mig


def voter(count: int = 1001) -> Mig:
    """Majority voter: *count* inputs, 1 output.

    A carry-save population-count tree (columns of full/half adders by
    weight) followed by one wide comparison against ``count // 2 + 1``.
    """
    if count % 2 == 0:
        raise ValueError("voter needs an odd input count")
    mig = Mig(name=f"voter{count}")
    words = WordBuilder(mig)
    votes = words.input_word(count, "v")

    columns: dict[int, list[int]] = {0: list(votes)}
    weight = 0
    while weight in columns:
        column = columns[weight]
        reduced: list[int] = []
        while len(column) >= 3:
            a, b, c = column.pop(), column.pop(), column.pop()
            total, carry = words.full_adder(a, b, c)
            reduced.append(total)
            columns.setdefault(weight + 1, []).append(carry)
        if len(column) == 2:
            a, b = column.pop(), column.pop()
            reduced.append(mig.xor(a, b))
            columns.setdefault(weight + 1, []).append(mig.and_(a, b))
        reduced.extend(column)
        columns[weight] = reduced
        if len(reduced) > 1:
            continue  # another reduction round at the same weight
        weight += 1

    width = max(columns) + 1
    total_word = [
        columns[w][0] if columns.get(w) else CONST0 for w in range(width)
    ]
    threshold = words.constant_word(count // 2 + 1, width)
    mig.add_po(words.geq(total_word, threshold), "majority")
    return mig


#: name -> (paper I/O, generator, paper-size kwargs, scaled kwargs) — the
#: same spec shape as :data:`repro.generators.epfl.SUITE_SPECS`.
CONTROL_SPECS = {
    "arbiter": ((256, 129), arbiter, {"width": 128}, {"width": 16}),
    "dec": ((8, 256), dec, {"width": 8}, {"width": 5}),
    "int2float": ((11, 7), int2float, {"width": 11}, {"width": 8}),
    "priority": ((128, 8), priority, {"width": 128}, {"width": 16}),
    "router": ((60, 30), router, {"rows": 6, "cols": 5}, {"rows": 3, "cols": 3}),
    "voter": ((1001, 1), voter, {"count": 1001}, {"count": 15}),
}


def control_suite(full_size: bool = False) -> dict[str, Mig]:
    """Generate all 6 control instances (paper sizes when *full_size*)."""
    suite = {}
    for name, (_, generator, full_kwargs, scaled_kwargs) in CONTROL_SPECS.items():
        kwargs = full_kwargs if full_size else scaled_kwargs
        suite[name] = generator(**kwargs)
    return suite

"""Seeded layered random MIGs for scalability work.

The EPFL-style arithmetic generators top out around tens of thousands of
gates and carry deep carry chains; scalability tests and benchmarks also
need *wide* instances — million-gate networks whose level population is
large enough for the array-native rewriting pipeline to batch over
(docs/PERFORMANCE.md).  :func:`layered_mig` builds exactly that shape:
gates arranged in layers of a chosen width, each choosing fanins from
the recent layers, fully deterministic per seed.

The construction goes through the ordinary strashing ``maj`` builder, so
generated networks contain the same local redundancy (strash hits, unit
rules, shareable cones) a synthesized netlist would — rewriting finds
real gains on them, they are not incompressible noise.
"""

from __future__ import annotations

import random

from ..core.mig import CONST0, Mig

__all__ = ["layered_mig"]


def layered_mig(
    num_gates: int,
    num_pis: int = 32,
    width: int = 512,
    locality: int = 3,
    num_pos: int = 8,
    seed: int = 0,
) -> Mig:
    """Build a random MIG of ~*num_gates* gates in layers of *width*.

    Every gate draws its three fanins (with random complementation) from
    the previous *locality* layers — wide levels, shallow local cones,
    plenty of reconvergence.  Construction strashing may merge some
    draws, so the loop runs until the gate count is reached; the result
    has **at least** ``num_gates`` gates only when the random draws
    permit, and never more than ``num_gates``.
    """
    if num_gates < 0:
        raise ValueError("num_gates must be non-negative")
    rng = random.Random(seed)
    mig = Mig(num_pis)
    layers: list[list[int]] = [[CONST0, *mig.pi_signals()]]
    while mig.num_gates < num_gates:
        pool: list[int] = []
        for layer in layers[-locality:]:
            pool.extend(layer)
        layer_target = min(width, num_gates - mig.num_gates)
        new_layer: list[int] = []
        for _ in range(layer_target):
            a, b, c = (rng.choice(pool) for _ in range(3))
            signal = mig.maj(
                a ^ rng.getrandbits(1),
                b ^ rng.getrandbits(1),
                c ^ rng.getrandbits(1),
            )
            new_layer.append(signal)
        layers.append(new_layer)
    for signal in layers[-1][: max(1, num_pos)]:
        mig.add_po(signal ^ rng.getrandbits(1))
    return mig

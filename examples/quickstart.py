"""Quickstart: build, inspect, optimize, and export an MIG.

Recreates Fig. 1 of the paper (the 3-gate, depth-2 full adder), checks
its function by exhaustive simulation, runs functional hashing over a
redundant variant of the same circuit, and exports the result as Verilog.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import io

from repro.core.mig import Mig, signal_not
from repro.core.simulate import check_equivalence
from repro.core.truth_table import tt_maj, tt_var
from repro.database import NpnDatabase
from repro.io.verilog import write_verilog
from repro.rewriting import functional_hashing


def build_full_adder() -> Mig:
    """Fig. 1: s = a ^ b ^ cin and cout = <a b cin> in three gates."""
    mig = Mig(3, name="full_adder")
    a, b, cin = mig.pi_signals()
    cout = mig.maj(a, b, cin)
    s = mig.maj(signal_not(cout), mig.maj(a, b, signal_not(cin)), cin)
    mig.add_po(s, "s")
    mig.add_po(cout, "cout")
    return mig


def build_wasteful_adder() -> Mig:
    """The same function, built naively with xor gates (9+ gates)."""
    mig = Mig(3, name="wasteful_adder")
    a, b, cin = mig.pi_signals()
    mig.add_po(mig.xor(mig.xor(a, b), cin), "s")
    mig.add_po(mig.or_(mig.or_(mig.and_(a, b), mig.and_(a, cin)), mig.and_(b, cin)), "cout")
    return mig


def main() -> None:
    fa = build_full_adder()
    print(f"Fig. 1 full adder: size {fa.num_gates}, depth {fa.depth()}")
    print(f"  s    = {fa.to_expression(fa.outputs[0])}")
    print(f"  cout = {fa.to_expression(fa.outputs[1])}")

    # Verify the function against the defining truth tables.
    s_tt, cout_tt = fa.simulate()
    a, b, c = (tt_var(3, i) for i in range(3))
    assert s_tt == a ^ b ^ c
    assert cout_tt == tt_maj(a, b, c)
    print("  function verified: s = a^b^cin, cout = <a b cin>")

    # Optimize a redundant implementation with functional hashing.
    wasteful = build_wasteful_adder()
    db = NpnDatabase.load()
    optimized = functional_hashing(wasteful, db, variant="BF")
    assert check_equivalence(wasteful, optimized)
    print(
        f"\nfunctional hashing (BF): {wasteful.num_gates} gates -> "
        f"{optimized.num_gates} gates (equivalence checked)"
    )

    # Export to Verilog.
    buf = io.StringIO()
    write_verilog(optimized, buf)
    print("\nVerilog export:\n" + buf.getvalue())


if __name__ == "__main__":
    main()

"""Going beyond one pass: scripted flows and SAT sweeping.

The paper's conclusion notes that running functional hashing several
times, or combining it with other optimization algorithms, "will likely
lead to further improvements".  This example demonstrates the machinery
this library provides for that: pass scripts, convergence iteration, and
FRAIG-style SAT sweeping, all equivalence-verified.

Run:  python examples/optimization_flows.py
"""

from __future__ import annotations

from repro.core.simulate import check_equivalence
from repro.database import NpnDatabase
from repro.generators import epfl
from repro.opt.flow import optimize_until_convergence, run_flow

def main() -> None:
    db = NpnDatabase.load()
    mig = epfl.square_root(10)
    print(f"{mig.name}: size {mig.num_gates}, depth {mig.depth()}\n")

    print("1. single BF pass (the paper's protocol):")
    once, _ = run_flow(mig, db, ["BF"])
    print(f"   size {once.num_gates}, depth {once.depth()}\n")

    print("2. BF iterated to a fixpoint:")
    fixpoint, passes = optimize_until_convergence(mig, db, "BF")
    print(f"   size {fixpoint.num_gates} after {passes} productive passes\n")

    print("3. combined script BF, TFD, fraig, BF (verbose):")
    combined, history = run_flow(mig, db, ["BF", "TFD", "fraig", "BF"], verbose=True)
    total = sum(step.runtime for step in history)
    print(f"   final size {combined.num_gates}, depth {combined.depth()} "
          f"({total:.2f}s)\n")

    print("4. depth-oriented script depth, TFD:")
    fast, _ = run_flow(mig, db, ["depth", "TFD"], verbose=True)
    print(f"   final size {fast.num_gates}, depth {fast.depth()}\n")

    for result in (once, fixpoint, combined, fast):
        assert check_equivalence(mig, result)
    print("all four results equivalence-checked against the original")

    ratio = combined.num_gates / mig.num_gates
    print(f"\ncombined flow size ratio: {ratio:.3f} "
          f"(vs {once.num_gates / mig.num_gates:.3f} for a single pass)")


if __name__ == "__main__":
    main()

"""Technology mapping before and after MIG optimization (Table IV style).

Maps an arithmetic benchmark onto the generic standard-cell library with
the cut-based mapper, then optimizes the MIG with functional hashing and
maps again, showing the area improvement that Table IV reports for the
EPFL suite.

Run:  python examples/technology_mapping.py [benchmark] [width]
"""

from __future__ import annotations

import sys

from repro.database import NpnDatabase
from repro.generators.epfl import SUITE_SPECS
from repro.mapping.library import default_library
from repro.mapping.mapper import map_mig
from repro.rewriting import functional_hashing


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "divisor"
    width = int(sys.argv[2]) if len(sys.argv) > 2 else 10
    _, generator, _, _ = SUITE_SPECS[name]
    mig = generator(width=width)
    library = default_library()
    print(f"{mig.name}: size {mig.num_gates}, depth {mig.depth()}")
    print(f"library: {len(library)} cells, NPN-matched up to 4 inputs\n")

    base = map_mig(mig, library)
    print(f"mapped baseline:   {base}")

    db = NpnDatabase.load()
    best_name, best = None, None
    for variant in ("TF", "T", "TD", "BF"):
        optimized = functional_hashing(mig, db, variant)
        mapped = map_mig(optimized, library)
        marker = ""
        if best is None or mapped.area < best.area:
            best_name, best = variant, mapped
            marker = "  <- best so far"
        print(f"mapped after {variant:3}:  {mapped}{marker}")

    ratio = best.area / base.area
    print(f"\nbest variant: {best_name}  (area ratio {ratio:.3f} vs unoptimized)")
    print("Table IV analogue: different variants win on different instances,")
    print("which is why the paper keeps all of them.")


if __name__ == "__main__":
    main()

"""Exact synthesis of minimum MIGs (Sec. III of the paper).

Demonstrates the SAT-based exact synthesis engine: the decision problem
"is there an MIG with k majority gates computing f?" is solved for
increasing k, with counterexample-guided row refinement.  Shows proven
minima for small functions, the hardest 4-input class S_{0,2} of Fig. 2
(from the precomputed database), and the Theorem 2 upper-bound
construction for a 6-variable function.

Run:  python examples/exact_synthesis.py
"""

from __future__ import annotations

import random

from repro.core.mig import Mig
from repro.core.npn import npn_canonize
from repro.core.truth_table import tt_var
from repro.database import NpnDatabase
from repro.exact.bounds import shannon_upper_bound_mig, theorem2_bound
from repro.exact.synthesis import synthesize_exact


def main() -> None:
    # Proven minimum sizes for classic functions.
    print("exact synthesis (proven minimum sizes):")
    cases = {
        "and2": tt_var(2, 0) & tt_var(2, 1),
        "xor2": tt_var(2, 0) ^ tt_var(2, 1),
        "maj3": (tt_var(3, 0) & tt_var(3, 1))
        | (tt_var(3, 0) & tt_var(3, 2))
        | (tt_var(3, 1) & tt_var(3, 2)),
        "xor3": tt_var(3, 0) ^ tt_var(3, 1) ^ tt_var(3, 2),
    }
    for name, spec in cases.items():
        n = 2 if name.endswith("2") else 3
        result = synthesize_exact(spec, n, conflict_budget=300000)
        expr = result.mig.to_expression(result.mig.outputs[0])
        print(f"  {name}: {result.size} gates in {result.runtime:.2f}s "
              f"({result.conflicts} conflicts)  {expr}")

    # The Fig. 2 function: S_{0,2}, the hardest 4-input NPN class.
    s02 = 0
    for m in range(16):
        if bin(m).count("1") in (0, 2):
            s02 |= 1 << m
    db = NpnDatabase.load()
    rep, _ = npn_canonize(s02, 4)
    entry = db.entries[rep]
    mig = Mig(4)
    mig.add_po(db.rebuild(mig, s02, mig.pi_signals()))
    mig = mig.cleanup()
    assert mig.simulate()[0] == s02
    print(f"\nFig. 2 function S_0,2 (paper optimum: 7 gates):")
    print(f"  database entry: {entry.size} gates, "
          f"{'proven minimal' if entry.proven else 'best known upper bound'}")
    print(f"  structure: {mig.to_expression(mig.outputs[0])}")

    # Theorem 2: Shannon construction for a random 6-variable function.
    spec6 = random.Random(42).getrandbits(64)
    big = shannon_upper_bound_mig(spec6, 6, db)
    assert big.simulate()[0] == spec6
    print(f"\nTheorem 2 construction, random 6-variable function:")
    print(f"  size {big.num_gates} <= bound {theorem2_bound(6, base_cost=9)} "
          f"(paper bound with proven base: {theorem2_bound(6)})")


if __name__ == "__main__":
    main()

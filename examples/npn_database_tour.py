"""A tour of the NPN-4 minimum-MIG database (Sec. IV of the paper).

Shows the Table I size histogram, looks up arbitrary functions through
NPN canonization, and instantiates a database structure over custom
leaves — the primitive the functional-hashing rewriter is built on.

Run:  python examples/npn_database_tour.py
"""

from __future__ import annotations

from repro.core.mig import Mig, signal_not
from repro.core.npn import apply_transform, npn_canonize
from repro.database import NpnDatabase


def main() -> None:
    db = NpnDatabase.load()
    print(f"database: {len(db)} NPN classes of 4-variable functions")
    proven = sum(1 for e in db.entries.values() if e.proven)
    print(f"entries with SAT minimality proof: {proven}/{len(db)}")
    print("\nTable I histogram (majority nodes -> classes):")
    for size, count in db.size_histogram().items():
        print(f"  {size}: {count:3d}  {'#' * count}")

    # Look up a function: 0x1668 == (a^b) xor-ish structure.
    tt = 0x1668
    rep, transform = npn_canonize(tt, 4)
    entry = db.entries[rep]
    print(f"\nlookup 0x{tt:04x}:")
    print(f"  NPN representative 0x{rep:04x}  (size {entry.size}, "
          f"proven={entry.proven})")
    print(f"  transform: perm={transform.perm} flips={transform.flips:04b} "
          f"out={transform.output_flip}")
    assert apply_transform(rep, transform, 4) == tt

    # Instantiate over custom leaves: here, over complemented inputs.
    mig = Mig(4)
    a, b, c, d = mig.pi_signals()
    signal = db.rebuild(mig, tt, [signal_not(a), b, signal_not(c), d])
    mig.add_po(signal)
    print(f"  instantiated over [!a, b, !c, d]: {mig.num_gates} gates")
    print(f"  structure: {mig.to_expression(signal)}")

    # The unit rules make degenerate lookups free.
    mig2 = Mig(4)
    s = db.rebuild(mig2, 0xAAAA, mig2.pi_signals())  # projection x0
    mig2.add_po(s)
    print(f"\nprojection 0xAAAA instantiates to {mig2.num_gates} gates (free)")


if __name__ == "__main__":
    main()

"""The paper's Table III experiment in miniature.

Generates an arithmetic benchmark (default: the square-root digit
recurrence), produces the "heavily optimized" baseline with algebraic
depth optimization (refs [3], [4]), then applies every functional-hashing
variant of Sec. V-C and prints the size/depth/runtime comparison —
exactly the structure of Table III.

Run:  python examples/optimize_arithmetic.py [benchmark] [width]
e.g.  python examples/optimize_arithmetic.py sine 12
"""

from __future__ import annotations

import sys
import time

from repro.core.simulate import check_equivalence
from repro.database import NpnDatabase
from repro.generators.epfl import SUITE_SPECS
from repro.opt.depth_opt import optimize_depth
from repro.rewriting import VARIANTS, functional_hashing


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "square-root"
    width = int(sys.argv[2]) if len(sys.argv) > 2 else 10
    if name not in SUITE_SPECS:
        raise SystemExit(f"unknown benchmark {name!r}; choose from {sorted(SUITE_SPECS)}")
    _, generator, _, _ = SUITE_SPECS[name]

    mig = generator(width=width)
    print(f"{mig.name}: {mig.num_pis} PIs, {mig.num_pos} POs, "
          f"size {mig.num_gates}, depth {mig.depth()}")

    baseline = optimize_depth(mig)
    assert check_equivalence(mig, baseline)
    print(f"depth-optimized baseline: size {baseline.num_gates}, "
          f"depth {baseline.depth()}  (the paper's starting point)\n")

    db = NpnDatabase.load()
    print(f"{'variant':8} {'size':>6} {'depth':>6} {'S ratio':>8} {'D ratio':>8} {'time':>7}")
    for variant in VARIANTS:
        start = time.perf_counter()
        optimized = functional_hashing(baseline, db, variant)
        runtime = time.perf_counter() - start
        assert check_equivalence(baseline, optimized), variant
        print(
            f"{variant:8} {optimized.num_gates:6d} {optimized.depth():6d} "
            f"{optimized.num_gates / baseline.num_gates:8.3f} "
            f"{optimized.depth() / max(1, baseline.depth()):8.3f} {runtime:6.2f}s"
        )
    print("\nall variants equivalence-checked against the baseline")


if __name__ == "__main__":
    main()
